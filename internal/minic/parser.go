package minic

type parser struct {
	toks []Token
	pos  int
	name string
}

// ParseFile parses MiniC source into an AST. name labels the compilation
// unit (it becomes the IR module name).
func ParseFile(name, src string) (*File, error) {
	toks, err := Lex(stripBOM(src))
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, name: name}
	return p.file()
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) curPos() Pos { return Pos{p.cur().Line, p.cur().Col} }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k Kind) (Token, error) {
	if !p.at(k) {
		return Token{}, errf(p.curPos(), "expected %v, found %v %q", k, p.cur().Kind, p.cur().Text)
	}
	return p.next(), nil
}

func (p *parser) file() (*File, error) {
	f := &File{Name: p.name}
	for !p.at(tEOF) {
		switch p.cur().Kind {
		case tInput, tInt:
			decl, err := p.varDecl(true)
			if err != nil {
				return nil, err
			}
			f.Globals = append(f.Globals, decl)
		case tFunc:
			fn, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fn)
		default:
			return nil, errf(p.curPos(), "expected declaration, found %v %q", p.cur().Kind, p.cur().Text)
		}
	}
	return f, nil
}

// varDecl parses "[input] int name[size] [= {...}];".
func (p *parser) varDecl(allowInput bool) (*VarDecl, error) {
	pos := p.curPos()
	d := &VarDecl{Pos: pos, Elems: 1}
	if p.accept(tInput) {
		if !allowInput {
			return nil, errf(pos, "input qualifier is only valid on globals")
		}
		d.Input = true
	}
	if _, err := p.expect(tInt); err != nil {
		return nil, err
	}
	nameTok, err := p.expect(tIdent)
	if err != nil {
		return nil, err
	}
	d.Name = nameTok.Text
	if p.accept(tLBracket) {
		sz, err := p.expect(tNumber)
		if err != nil {
			return nil, err
		}
		if sz.Val < 1 {
			return nil, errf(Pos{sz.Line, sz.Col}, "array size must be at least 1")
		}
		d.Elems = int(sz.Val)
		if _, err := p.expect(tRBracket); err != nil {
			return nil, err
		}
	}
	if p.accept(tAssign) {
		if _, err := p.expect(tLBrace); err != nil {
			return nil, err
		}
		for !p.at(tRBrace) {
			neg := p.accept(tMinus)
			n, err := p.expect(tNumber)
			if err != nil {
				return nil, err
			}
			v := n.Val
			if neg {
				v = -v
			}
			d.Init = append(d.Init, v)
			if !p.accept(tComma) {
				break
			}
		}
		if _, err := p.expect(tRBrace); err != nil {
			return nil, err
		}
		if len(d.Init) > d.Elems {
			return nil, errf(pos, "initializer for %s has %d values but the variable holds %d",
				d.Name, len(d.Init), d.Elems)
		}
	}
	if _, err := p.expect(tSemi); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	pos := p.curPos()
	p.next() // func
	fn := &FuncDecl{Pos: pos}
	switch {
	case p.accept(tInt):
		fn.HasRet = true
	case p.accept(tVoid):
	default:
		return nil, errf(p.curPos(), "expected 'int' or 'void' return type")
	}
	nameTok, err := p.expect(tIdent)
	if err != nil {
		return nil, err
	}
	fn.Name = nameTok.Text
	if _, err := p.expect(tLParen); err != nil {
		return nil, err
	}
	for !p.at(tRParen) {
		if len(fn.Params) > 0 {
			if _, err := p.expect(tComma); err != nil {
				return nil, err
			}
		}
		ppos := p.curPos()
		if _, err := p.expect(tInt); err != nil {
			return nil, err
		}
		id, err := p.expect(tIdent)
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, Param{Pos: ppos, Name: id.Text})
	}
	p.next() // )
	if _, err := p.expect(tLBrace); err != nil {
		return nil, err
	}
	// Local declarations come first, then statements.
	for p.at(tInt) {
		d, err := p.varDecl(false)
		if err != nil {
			return nil, err
		}
		fn.Locals = append(fn.Locals, d)
	}
	body, err := p.stmtsUntilBrace()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) stmtsUntilBrace() ([]Stmt, error) {
	var stmts []Stmt
	for !p.at(tRBrace) {
		if p.at(tEOF) {
			return nil, errf(p.curPos(), "unexpected end of file, missing '}'")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.next() // }
	return stmts, nil
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect(tLBrace); err != nil {
		return nil, err
	}
	return p.stmtsUntilBrace()
}

func (p *parser) stmt() (Stmt, error) {
	pos := p.curPos()
	switch p.cur().Kind {
	case tIf:
		p.next()
		if _, err := p.expect(tLParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Pos: pos, Cond: cond, Then: then}
		if p.accept(tElse) {
			if p.at(tIf) {
				// else-if chains: parse the nested if as the sole else stmt.
				nested, err := p.stmt()
				if err != nil {
					return nil, err
				}
				st.Else = []Stmt{nested}
			} else {
				els, err := p.block()
				if err != nil {
					return nil, err
				}
				st.Else = els
			}
		}
		return st, nil
	case tWhile:
		p.next()
		if _, err := p.expect(tLParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		maxIter, err := p.optMax()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: pos, Cond: cond, Max: maxIter, Body: body}, nil
	case tFor:
		p.next()
		if _, err := p.expect(tLParen); err != nil {
			return nil, err
		}
		var init, post *AssignStmt
		if !p.at(tSemi) {
			a, err := p.assignNoSemi()
			if err != nil {
				return nil, err
			}
			init = a
		}
		if _, err := p.expect(tSemi); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tSemi); err != nil {
			return nil, err
		}
		if !p.at(tRParen) {
			a, err := p.assignNoSemi()
			if err != nil {
				return nil, err
			}
			post = a
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		maxIter, err := p.optMax()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Pos: pos, Init: init, Cond: cond, Post: post, Max: maxIter, Body: body}, nil
	case tReturn:
		p.next()
		st := &ReturnStmt{Pos: pos}
		if !p.at(tSemi) {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Value = v
		}
		if _, err := p.expect(tSemi); err != nil {
			return nil, err
		}
		return st, nil
	case tBreak:
		p.next()
		if _, err := p.expect(tSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: pos}, nil
	case tContinue:
		p.next()
		if _, err := p.expect(tSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: pos}, nil
	case tAtomic:
		p.next()
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &AtomicStmt{Pos: pos, Body: body}, nil
	case tPrint:
		p.next()
		if _, err := p.expect(tLParen); err != nil {
			return nil, err
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(tSemi); err != nil {
			return nil, err
		}
		return &PrintStmt{Pos: pos, Value: v}, nil
	case tIdent:
		// Assignment or call statement.
		if p.toks[p.pos+1].Kind == tLParen {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tSemi); err != nil {
				return nil, err
			}
			return &ExprStmt{Pos: pos, X: x}, nil
		}
		a, err := p.assignNoSemi()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tSemi); err != nil {
			return nil, err
		}
		return a, nil
	default:
		return nil, errf(pos, "expected statement, found %v %q", p.cur().Kind, p.cur().Text)
	}
}

func (p *parser) optMax() (int, error) {
	if !p.accept(tAtMax) {
		return 0, nil
	}
	if _, err := p.expect(tLParen); err != nil {
		return 0, err
	}
	n, err := p.expect(tNumber)
	if err != nil {
		return 0, err
	}
	if n.Val < 1 {
		return 0, errf(Pos{n.Line, n.Col}, "@max must be at least 1")
	}
	if _, err := p.expect(tRParen); err != nil {
		return 0, err
	}
	return int(n.Val), nil
}

func (p *parser) assignNoSemi() (*AssignStmt, error) {
	pos := p.curPos()
	name, err := p.expect(tIdent)
	if err != nil {
		return nil, err
	}
	st := &AssignStmt{Pos: pos, Name: name.Text}
	if p.accept(tLBracket) {
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRBracket); err != nil {
			return nil, err
		}
		st.Index = idx
	}
	if _, err := p.expect(tAssign); err != nil {
		return nil, err
	}
	v, err := p.expr()
	if err != nil {
		return nil, err
	}
	st.Value = v
	return st, nil
}

// Expression precedence, loosest first:
//
//	||  &&  |  ^  &  == !=  < <= > >=  << >>  + -  * / %  unary
var binPrec = map[Kind]int{
	tOrOr: 1, tAndAnd: 2, tPipe: 3, tCaret: 4, tAmp: 5,
	tEq: 6, tNe: 6, tLt: 7, tLe: 7, tGt: 7, tGe: 7,
	tShl: 8, tShr: 8, tPlus: 9, tMinus: 9,
	tStar: 10, tSlash: 10, tPercent: 10,
}

func (p *parser) expr() (Expr, error) { return p.binExpr(1) }

func (p *parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := binPrec[p.cur().Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.next()
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Pos: Pos{op.Line, op.Col}, Op: op.Text, L: lhs, R: rhs}
	}
}

func (p *parser) unary() (Expr, error) {
	pos := p.curPos()
	switch p.cur().Kind {
	case tMinus:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: pos, Op: "-", X: x}, nil
	case tBang:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: pos, Op: "!", X: x}, nil
	case tTilde:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: pos, Op: "~", X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	pos := p.curPos()
	switch p.cur().Kind {
	case tNumber:
		t := p.next()
		return &NumLit{Pos: pos, Val: t.Val}, nil
	case tLParen:
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return x, nil
	case tIdent:
		name := p.next().Text
		switch {
		case p.accept(tLParen):
			call := &CallExpr{Pos: pos, Name: name}
			for !p.at(tRParen) {
				if len(call.Args) > 0 {
					if _, err := p.expect(tComma); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			p.next() // )
			return call, nil
		case p.accept(tLBracket):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Pos: pos, Name: name, Index: idx}, nil
		default:
			return &VarRef{Pos: pos, Name: name}, nil
		}
	default:
		return nil, errf(pos, "expected expression, found %v %q", p.cur().Kind, p.cur().Text)
	}
}
