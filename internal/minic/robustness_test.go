package minic

import (
	"strings"
	"testing"

	"schematic/internal/ir"
)

// FuzzCompileRobustness feeds arbitrary bytes to the front end: Compile
// must either return an error or a verifiable module — never panic, never
// hand a broken module downstream. Run with
//
//	go test ./internal/minic -fuzz FuzzCompileRobustness -fuzztime 30s
func FuzzCompileRobustness(f *testing.F) {
	f.Add("func void main() { print(1); }")
	f.Add("int g;\nfunc void main() { g = 1; }")
	f.Add("func int f(int x) { return x; } func void main() { print(f(2)); }")
	f.Add("for (;;) @max() {")
	f.Add("input int a[4]; func void main() { atomic { print(a[0]); } }")
	f.Add("\x00\xff\xfe")
	f.Add("func void main() { int x; x = 1 / 0; }")
	f.Add(strings.Repeat("((((", 200))

	f.Fuzz(func(t *testing.T, src string) {
		m, err := Compile("fuzz", src)
		if err != nil {
			return // rejection is always fine
		}
		if m == nil {
			t.Fatal("nil module with nil error")
		}
		if verr := ir.Verify(m); verr != nil {
			t.Fatalf("front end produced an unverifiable module: %v\n%s", verr, src)
		}
	})
}

// TestCompileErrorsArePositioned checks that front-end diagnostics carry
// line:column positions — the property users depend on.
func TestCompileErrorsArePositioned(t *testing.T) {
	cases := []string{
		"func void main() { x = 1; }",                  // undeclared
		"int g;\nfunc void main() { g = ; }",           // missing expr
		"func void main() { for (;;) { } }",            // missing @max
		"int g;\nint g;\nfunc void main() { }",         // redeclaration
		"func int f() { }\nfunc void main() { }",       // missing return
		"func void main() { print(1) }",                // missing semicolon
		"input int a[2];\nfunc void main() { a = 1; }", // array misuse
	}
	for _, src := range cases {
		_, err := Compile("t", src)
		if err == nil {
			t.Errorf("accepted invalid program: %q", src)
			continue
		}
		msg := err.Error()
		if !strings.Contains(msg, ":") {
			t.Errorf("diagnostic without position: %q -> %v", src, err)
		}
	}
}

// TestDeeplyNestedExpressions must not blow the stack or hang.
func TestDeeplyNestedExpressions(t *testing.T) {
	src := "int g;\nfunc void main() { g = " + strings.Repeat("(", 3000) + "1" +
		strings.Repeat(")", 3000) + "; }"
	// Either outcome (accept or reject) is fine; termination is the test.
	if m, err := Compile("t", src); err == nil {
		if verr := ir.Verify(m); verr != nil {
			t.Fatal(verr)
		}
	}
}
