package minic

// Check performs semantic analysis on a parsed file: symbol resolution,
// scalar/array usage, call arity and value-use consistency, control-flow
// placement of break/continue, all-paths-return for int functions, and the
// main signature.
func Check(f *File) error {
	c := &checker{
		file:    f,
		globals: map[string]*VarDecl{},
		funcs:   map[string]*FuncDecl{},
	}
	return c.run()
}

type checker struct {
	file    *File
	globals map[string]*VarDecl
	funcs   map[string]*FuncDecl

	// Per-function state.
	fn          *FuncDecl
	locals      map[string]*VarDecl
	params      map[string]bool
	loops       int
	atomicDepth int
}

func (c *checker) run() error {
	for _, g := range c.file.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return errf(g.Pos, "duplicate global %q", g.Name)
		}
		c.globals[g.Name] = g
	}
	for _, fn := range c.file.Funcs {
		if _, dup := c.funcs[fn.Name]; dup {
			return errf(fn.Pos, "duplicate function %q", fn.Name)
		}
		if _, clash := c.globals[fn.Name]; clash {
			return errf(fn.Pos, "function %q collides with a global variable", fn.Name)
		}
		c.funcs[fn.Name] = fn
	}
	mainFn, ok := c.funcs["main"]
	if !ok {
		return errf(Pos{1, 1}, "missing 'func void main()'")
	}
	if mainFn.HasRet || len(mainFn.Params) != 0 {
		return errf(mainFn.Pos, "main must be 'func void main()' with no parameters")
	}
	for _, fn := range c.file.Funcs {
		if err := c.checkFunc(fn); err != nil {
			return err
		}
	}
	return c.checkNoRecursion()
}

// checkNoRecursion rejects call-graph cycles up front: frames are
// statically allocated (paper III-B1), so recursion cannot be lowered
// and would otherwise surface as an unpositioned ir.Verify failure.
func (c *checker) checkNoRecursion() error {
	const unvisited, visiting, done = 0, 1, 2
	state := map[string]int{}
	var visit func(fn *FuncDecl) error
	visit = func(fn *FuncDecl) error {
		switch state[fn.Name] {
		case visiting:
			return errf(fn.Pos, "recursion involving %q (unsupported: frames are statically allocated)", fn.Name)
		case done:
			return nil
		}
		state[fn.Name] = visiting
		for _, callee := range c.callees(fn) {
			if err := visit(callee); err != nil {
				return err
			}
		}
		state[fn.Name] = done
		return nil
	}
	for _, fn := range c.file.Funcs {
		if err := visit(fn); err != nil {
			return err
		}
	}
	return nil
}

// callees returns the functions fn calls directly, in source order.
func (c *checker) callees(fn *FuncDecl) []*FuncDecl {
	var out []*FuncDecl
	seen := map[string]bool{}
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case *CallExpr:
			if callee, ok := c.funcs[x.Name]; ok && !seen[x.Name] {
				seen[x.Name] = true
				out = append(out, callee)
			}
			for _, a := range x.Args {
				walkExpr(a)
			}
		case *IndexExpr:
			walkExpr(x.Index)
		case *UnaryExpr:
			walkExpr(x.X)
		case *BinaryExpr:
			walkExpr(x.L)
			walkExpr(x.R)
		}
	}
	walkAssign := func(a *AssignStmt) {
		if a == nil {
			return
		}
		if a.Index != nil {
			walkExpr(a.Index)
		}
		walkExpr(a.Value)
	}
	var walkStmts func(stmts []Stmt)
	walkStmts = func(stmts []Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *AssignStmt:
				walkAssign(st)
			case *IfStmt:
				walkExpr(st.Cond)
				walkStmts(st.Then)
				walkStmts(st.Else)
			case *WhileStmt:
				walkExpr(st.Cond)
				walkStmts(st.Body)
			case *ForStmt:
				walkAssign(st.Init)
				if st.Cond != nil {
					walkExpr(st.Cond)
				}
				walkAssign(st.Post)
				walkStmts(st.Body)
			case *ReturnStmt:
				if st.Value != nil {
					walkExpr(st.Value)
				}
			case *PrintStmt:
				walkExpr(st.Value)
			case *AtomicStmt:
				walkStmts(st.Body)
			case *ExprStmt:
				walkExpr(st.X)
			}
		}
	}
	walkStmts(fn.Body)
	return out
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	c.fn = fn
	c.locals = map[string]*VarDecl{}
	c.params = map[string]bool{}
	c.loops = 0
	for _, prm := range fn.Params {
		if c.params[prm.Name] {
			return errf(prm.Pos, "duplicate parameter %q", prm.Name)
		}
		c.params[prm.Name] = true
	}
	for _, l := range fn.Locals {
		if _, dup := c.locals[l.Name]; dup {
			return errf(l.Pos, "duplicate local %q", l.Name)
		}
		if c.params[l.Name] {
			return errf(l.Pos, "local %q shadows a parameter", l.Name)
		}
		c.locals[l.Name] = l
	}
	if err := c.checkStmts(fn.Body); err != nil {
		return err
	}
	if fn.HasRet && !stmtsReturn(fn.Body) {
		return errf(fn.Pos, "function %q: not all paths return a value", fn.Name)
	}
	return nil
}

// stmtsReturn reports whether the statement list definitely returns on
// every path (conservatively).
func stmtsReturn(stmts []Stmt) bool {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ReturnStmt:
			return true
		case *IfStmt:
			if st.Else != nil && stmtsReturn(st.Then) && stmtsReturn(st.Else) {
				return true
			}
		}
	}
	return false
}

// lookupVar resolves a variable name: locals and params shadow globals.
func (c *checker) lookupVar(name string) (decl *VarDecl, isParam bool, ok bool) {
	if c.params[name] {
		return nil, true, true
	}
	if d, found := c.locals[name]; found {
		return d, false, true
	}
	if d, found := c.globals[name]; found {
		return d, false, true
	}
	return nil, false, false
}

func (c *checker) checkStmts(stmts []Stmt) error {
	for i, s := range stmts {
		terminal := false
		switch s.(type) {
		case *ReturnStmt, *BreakStmt, *ContinueStmt:
			terminal = true
		}
		if terminal && i != len(stmts)-1 {
			return errf(stmts[i+1].stmtPos(), "unreachable code")
		}
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *AssignStmt:
		decl, isParam, ok := c.lookupVar(st.Name)
		if !ok {
			return errf(st.Pos, "undefined variable %q", st.Name)
		}
		if isParam {
			if st.Index != nil {
				return errf(st.Pos, "parameter %q is not an array", st.Name)
			}
		} else if st.Index != nil {
			if decl.Elems == 1 {
				return errf(st.Pos, "%q is a scalar, not an array", st.Name)
			}
			if err := c.checkExpr(st.Index); err != nil {
				return err
			}
		} else if decl.Elems != 1 {
			return errf(st.Pos, "array %q must be assigned element-wise", st.Name)
		}
		return c.checkExpr(st.Value)
	case *IfStmt:
		if err := c.checkExpr(st.Cond); err != nil {
			return err
		}
		if err := c.checkStmts(st.Then); err != nil {
			return err
		}
		return c.checkStmts(st.Else)
	case *WhileStmt:
		if err := c.checkExpr(st.Cond); err != nil {
			return err
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.checkStmts(st.Body)
	case *ForStmt:
		if st.Init != nil {
			if err := c.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if err := c.checkExpr(st.Cond); err != nil {
			return err
		}
		if st.Post != nil {
			if err := c.checkStmt(st.Post); err != nil {
				return err
			}
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.checkStmts(st.Body)
	case *ReturnStmt:
		if c.fn.HasRet && st.Value == nil {
			return errf(st.Pos, "function %q must return a value", c.fn.Name)
		}
		if !c.fn.HasRet && st.Value != nil {
			return errf(st.Pos, "void function %q cannot return a value", c.fn.Name)
		}
		if st.Value != nil {
			return c.checkExpr(st.Value)
		}
		return nil
	case *BreakStmt:
		if c.loops == 0 {
			return errf(st.Pos, "break outside a loop")
		}
		return nil
	case *ContinueStmt:
		if c.loops == 0 {
			return errf(st.Pos, "continue outside a loop")
		}
		return nil
	case *AtomicStmt:
		if c.atomicDepth > 0 {
			return errf(st.Pos, "nested atomic sections")
		}
		c.atomicDepth++
		defer func() { c.atomicDepth-- }()
		return c.checkStmts(st.Body)
	case *PrintStmt:
		return c.checkExpr(st.Value)
	case *ExprStmt:
		call, ok := st.X.(*CallExpr)
		if !ok {
			return errf(st.Pos, "expression statement must be a call")
		}
		return c.checkCall(call, false)
	default:
		return errf(s.stmtPos(), "internal: unknown statement %T", s)
	}
}

func (c *checker) checkExpr(e Expr) error {
	switch x := e.(type) {
	case *NumLit:
		return nil
	case *VarRef:
		decl, isParam, ok := c.lookupVar(x.Name)
		if !ok {
			return errf(x.Pos, "undefined variable %q", x.Name)
		}
		if !isParam && decl.Elems != 1 {
			return errf(x.Pos, "array %q used without an index", x.Name)
		}
		return nil
	case *IndexExpr:
		decl, isParam, ok := c.lookupVar(x.Name)
		if !ok {
			return errf(x.Pos, "undefined variable %q", x.Name)
		}
		if isParam {
			return errf(x.Pos, "parameter %q is not an array", x.Name)
		}
		if decl.Elems == 1 {
			return errf(x.Pos, "%q is a scalar, not an array", x.Name)
		}
		return c.checkExpr(x.Index)
	case *CallExpr:
		return c.checkCall(x, true)
	case *UnaryExpr:
		return c.checkExpr(x.X)
	case *BinaryExpr:
		if err := c.checkExpr(x.L); err != nil {
			return err
		}
		return c.checkExpr(x.R)
	default:
		return errf(e.exprPos(), "internal: unknown expression %T", e)
	}
}

func (c *checker) checkCall(call *CallExpr, wantValue bool) error {
	fn, ok := c.funcs[call.Name]
	if !ok {
		return errf(call.Pos, "undefined function %q", call.Name)
	}
	if len(call.Args) != len(fn.Params) {
		return errf(call.Pos, "%s takes %d argument(s), got %d",
			call.Name, len(fn.Params), len(call.Args))
	}
	if wantValue && !fn.HasRet {
		return errf(call.Pos, "void function %q used as a value", call.Name)
	}
	for _, a := range call.Args {
		if err := c.checkExpr(a); err != nil {
			return err
		}
	}
	return nil
}
