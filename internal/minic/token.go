// Package minic implements the source language front end of the
// reproduction: a small C-like language (MiniC) with a lexer, a
// recursive-descent parser, semantic analysis, and lowering to the IR of
// package ir.
//
// The paper's toolchain compiles C with clang and operates on LLVM IR;
// MiniC plays the role of C here. The language is deliberately small but
// sufficient for the MiBench2-style benchmarks of the evaluation:
//
//	// global declarations
//	input int data[64];          // filled with workload input before a run
//	int table[256] = {1, 2, 3};  // optional initializer
//	int sum;
//
//	func int clamp(int x, int hi) {
//	    if (x > hi) { return hi; }
//	    return x;
//	}
//
//	func void main() {
//	    int i;
//	    sum = 0;
//	    for (i = 0; i < 64; i = i + 1) @max(64) {
//	        sum = sum + data[i];
//	    }
//	    print(sum);
//	}
//
// Notes:
//   - the only scalar type is int (a machine word);
//   - arrays are one-dimensional with compile-time sizes;
//   - loops take an optional @max(N) bound annotation, used by checkpoint
//     placement (paper, III-B2);
//   - && and || evaluate both operands (no short-circuit); MiniC code must
//     not rely on the right operand being skipped;
//   - variables are memory objects and are never promoted to registers,
//     matching the paper's variable-granularity memory allocation.
package minic

import "fmt"

// Kind enumerates token kinds.
type Kind int

const (
	tEOF Kind = iota
	tIdent
	tNumber

	// Keywords.
	tFunc
	tInt
	tVoid
	tInput
	tIf
	tElse
	tWhile
	tFor
	tReturn
	tBreak
	tContinue
	tPrint
	tAtomic
	tAtMax

	// Punctuation.
	tLParen
	tRParen
	tLBrace
	tRBrace
	tLBracket
	tRBracket
	tComma
	tSemi
	tAssign

	// Operators.
	tPlus
	tMinus
	tStar
	tSlash
	tPercent
	tAmp
	tPipe
	tCaret
	tShl
	tShr
	tEq
	tNe
	tLt
	tLe
	tGt
	tGe
	tAndAnd
	tOrOr
	tBang
	tTilde
)

var kindNames = map[Kind]string{
	tEOF: "end of file", tIdent: "identifier", tNumber: "number",
	tFunc: "'func'", tInt: "'int'", tVoid: "'void'", tInput: "'input'",
	tIf: "'if'", tElse: "'else'", tWhile: "'while'", tFor: "'for'",
	tReturn: "'return'", tBreak: "'break'", tContinue: "'continue'",
	tPrint: "'print'", tAtomic: "'atomic'", tAtMax: "'@max'",
	tLParen: "'('", tRParen: "')'", tLBrace: "'{'", tRBrace: "'}'",
	tLBracket: "'['", tRBracket: "']'", tComma: "','", tSemi: "';'",
	tAssign: "'='",
	tPlus:   "'+'", tMinus: "'-'", tStar: "'*'", tSlash: "'/'",
	tPercent: "'%'", tAmp: "'&'", tPipe: "'|'", tCaret: "'^'",
	tShl: "'<<'", tShr: "'>>'", tEq: "'=='", tNe: "'!='",
	tLt: "'<'", tLe: "'<='", tGt: "'>'", tGe: "'>='",
	tAndAnd: "'&&'", tOrOr: "'||'", tBang: "'!'", tTilde: "'~'",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

var keywords = map[string]Kind{
	"func": tFunc, "int": tInt, "void": tVoid, "input": tInput,
	"if": tIf, "else": tElse, "while": tWhile, "for": tFor,
	"return": tReturn, "break": tBreak, "continue": tContinue,
	"print": tPrint, "atomic": tAtomic,
}

// Token is a lexed token with its source position.
type Token struct {
	Kind Kind
	Text string
	Val  int64 // for tNumber
	Line int
	Col  int
}

// Pos is a source position used in diagnostics.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a front-end diagnostic.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("minic: %v: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
