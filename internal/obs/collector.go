// Package obs turns the emulator's Observer event stream into
// observability artifacts: an energy-attribution collector (per-block,
// per-function and per-checkpoint-site ledgers that reconcile exactly
// against the run's energy total), a Chrome trace-event timeline
// (Perfetto-loadable), a folded-stack exporter for energy flamegraphs,
// and a raw NDJSON event stream.
//
// Every exporter is streaming: none retains the full event stream, so
// observing a long run costs memory proportional to the program's shape
// (blocks, sites, distinct call stacks), not its length.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"

	"schematic/internal/emulator"
)

// BlockKey names a basic block within a function.
type BlockKey struct {
	Func, Block string
}

// BlockEnergy is the per-block energy ledger: first-execution
// computation energy attributed to the block, with the Fig. 7 access
// split. Save/restore/re-execution energy is attributed to checkpoint
// sites instead (SiteStats), so blocks and sites partition the run's
// total energy between them.
type BlockEnergy struct {
	Func, Block string
	Entries     int64 // block executions (stack replays after a failure excluded)

	Compute     float64 // total first-execution computation energy, nJ
	VMAccess    float64 // portion spent on VM word accesses
	NVMAccess   float64 // portion spent on NVM word accesses
	VMAccesses  int64
	NVMAccesses int64
}

// Other is the non-memory share of the block's computation energy.
func (b *BlockEnergy) Other() float64 { return b.Compute - b.VMAccess - b.NVMAccess }

// FuncEnergy aggregates BlockEnergy over a function.
type FuncEnergy struct {
	Func                string
	Calls               int64 // frame pushes (boot and call entries; resumes excluded)
	Compute             float64
	VMAccess, NVMAccess float64
}

// SiteStats is the per-checkpoint-site ledger. Site -1 collects work
// with no owning checkpoint: cold-restart re-execution and boot-time
// restores.
type SiteStats struct {
	Site        int
	Func, Block string // first observed location of the site

	Fires      int64 // checkpoint instruction executions (incl. skipped/conditional)
	Saves      int64 // save operations actually performed
	Restores   int64 // restore operations (wake-ups and post-failure recoveries)
	BytesSaved int64 // bytes written to the NVM checkpoint area

	SaveEnergy    float64 // nJ
	RestoreEnergy float64
	ReexecEnergy  float64 // re-execution energy attributed to resumes from this site
}

// Total is the site's full intermittency bill.
func (s *SiteStats) Total() float64 { return s.SaveEnergy + s.RestoreEnergy + s.ReexecEnergy }

// Collector is an emulator.Observer that builds the attribution ledgers.
// It is not safe for concurrent use; attach one collector per run.
type Collector struct {
	blocks map[BlockKey]*BlockEnergy
	sites  map[int]*SiteStats

	PowerFailures    int64
	Sleeps           int64
	PoisonReads      int64
	InjectedFailures int64 // schedule-induced failures (subset of PowerFailures)
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		blocks: map[BlockKey]*BlockEnergy{},
		sites:  map[int]*SiteStats{},
	}
}

func (c *Collector) block(e emulator.Event) *BlockEnergy {
	key := BlockKey{}
	if e.Fn != nil {
		key.Func = e.Fn.Name
	}
	if e.Block != nil {
		key.Block = e.Block.Name
	}
	b, ok := c.blocks[key]
	if !ok {
		b = &BlockEnergy{Func: key.Func, Block: key.Block}
		c.blocks[key] = b
	}
	return b
}

func (c *Collector) site(e emulator.Event) *SiteStats {
	s, ok := c.sites[e.Site]
	if !ok {
		s = &SiteStats{Site: e.Site}
		if e.Fn != nil {
			s.Func = e.Fn.Name
		}
		if e.Block != nil {
			s.Block = e.Block.Name
		}
		c.sites[e.Site] = s
	}
	return s
}

// Event implements emulator.Observer.
func (c *Collector) Event(e emulator.Event) {
	switch e.Kind {
	case emulator.EvBlockEnter:
		if !e.Resume {
			c.block(e).Entries++
		}
	case emulator.EvCheckpointHit:
		c.site(e).Fires++
	case emulator.EvSave:
		s := c.site(e)
		s.Saves++
		s.BytesSaved += int64(e.Bytes)
	case emulator.EvRestore:
		c.site(e).Restores++
	case emulator.EvPowerFailure:
		c.PowerFailures++
	case emulator.EvInjection:
		c.InjectedFailures++
	case emulator.EvSleepStart:
		c.Sleeps++
	case emulator.EvPoisonRead:
		c.PoisonReads++
	case emulator.EvCharge:
		switch e.Class {
		case emulator.ChargeCompute:
			c.block(e).Compute += e.Energy
		case emulator.ChargeVMAccess:
			b := c.block(e)
			b.Compute += e.Energy
			b.VMAccess += e.Energy
			b.VMAccesses++
		case emulator.ChargeNVMAccess:
			b := c.block(e)
			b.Compute += e.Energy
			b.NVMAccess += e.Energy
			b.NVMAccesses++
		case emulator.ChargeSave:
			c.site(e).SaveEnergy += e.Energy
		case emulator.ChargeRestore:
			c.site(e).RestoreEnergy += e.Energy
		case emulator.ChargeReexec:
			c.site(e).ReexecEnergy += e.Energy
		}
	}
}

// Blocks returns the per-block ledgers sorted by (function, block).
func (c *Collector) Blocks() []BlockEnergy {
	out := make([]BlockEnergy, 0, len(c.blocks))
	for _, b := range c.blocks {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Func != out[j].Func {
			return out[i].Func < out[j].Func
		}
		return out[i].Block < out[j].Block
	})
	return out
}

// Functions aggregates the block ledgers per function, sorted by name.
// Aggregation walks the blocks in their sorted order — never the map —
// so the float sums accumulate in one fixed sequence and two calls (or
// two runs) render byte-identical values.
func (c *Collector) Functions() []FuncEnergy {
	var out []FuncEnergy
	for _, b := range c.Blocks() {
		if len(out) == 0 || out[len(out)-1].Func != b.Func {
			out = append(out, FuncEnergy{Func: b.Func})
		}
		f := &out[len(out)-1]
		f.Compute += b.Compute
		f.VMAccess += b.VMAccess
		f.NVMAccess += b.NVMAccess
	}
	return out
}

// Sites returns the per-site ledgers sorted by site ID.
func (c *Collector) Sites() []SiteStats {
	out := make([]SiteStats, 0, len(c.sites))
	for _, s := range c.sites {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// TopSites returns up to n sites ordered by total attributed energy
// (descending, ties by site ID).
func (c *Collector) TopSites(n int) []SiteStats {
	out := c.Sites()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Total() > out[j].Total() })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// AttributedTotal is the energy the collector accounted for: block
// computation plus site save/restore/re-execution.
// The sum runs over the sorted ledgers so the accumulation order — and
// therefore the rounded float — is the same on every call.
func (c *Collector) AttributedTotal() float64 {
	var t float64
	for _, b := range c.Blocks() {
		t += b.Compute
	}
	for _, s := range c.Sites() {
		t += s.Total()
	}
	return t
}

// Reconcile enforces the attribution invariant: every category and the
// grand total must match the run's ledger. A violation means the
// emulator charged energy the collector did not see, or vice versa.
//
// The tolerance is 1e-6 nJ plus a 1e-8 relative term: the ledger sums
// charges chronologically while the collector groups them per block and
// site, so float rounding drifts with the charge count — but stays many
// orders of magnitude below a single instruction charge (~0.4 nJ), the
// smallest possible real attribution error.
func (c *Collector) Reconcile(res *emulator.Result) error {
	var compute, save, restore, reexec float64
	for _, b := range c.Blocks() {
		compute += b.Compute
	}
	for _, s := range c.Sites() {
		save += s.SaveEnergy
		restore += s.RestoreEnergy
		reexec += s.ReexecEnergy
	}
	check := func(name string, got, want float64) error {
		tol := 1e-6 + 1e-8*math.Abs(want)
		if math.Abs(got-want) > tol {
			return fmt.Errorf("obs: %s energy mismatch: attributed %.9f nJ, ledger %.9f nJ", name, got, want)
		}
		return nil
	}
	l := res.Energy
	for _, e := range []error{
		check("compute", compute, l.Computation),
		check("save", save, l.Save),
		check("restore", restore, l.Restore),
		check("re-execution", reexec, l.Reexecution),
		check("total", compute+save+restore+reexec, l.Total()),
	} {
		if e != nil {
			return e
		}
	}
	return nil
}

// SiteName renders a site ID for display; -1 is the synthetic boot site.
func SiteName(id int) string {
	if id < 0 {
		return "(boot)"
	}
	return fmt.Sprintf("#%d", id)
}

// RenderSites prints the per-site table (iemu -sites).
func (c *Collector) RenderSites(w io.Writer) {
	fmt.Fprintf(w, "%-8s %-20s %8s %8s %8s %10s %10s %10s %10s %10s\n",
		"site", "where", "fires", "saves", "restores", "bytes", "save µJ", "rest µJ", "re-ex µJ", "total µJ")
	for _, s := range c.Sites() {
		where := s.Func
		if s.Block != "" {
			where += "." + s.Block
		}
		fmt.Fprintf(w, "%-8s %-20s %8d %8d %8d %10d %10.1f %10.1f %10.1f %10.1f\n",
			SiteName(s.Site), where, s.Fires, s.Saves, s.Restores, s.BytesSaved,
			s.SaveEnergy/1000, s.RestoreEnergy/1000, s.ReexecEnergy/1000, s.Total()/1000)
	}
}
