package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"schematic/internal/emulator"
)

// Flame is an emulator.Observer that accumulates energy per call stack
// in the pprof "folded stack" text format, for flamegraph tools
// (flamegraph.pl, speedscope, inferno). Stacks are function frames
// mirrored exactly from the Call/Return/Resume events, with the
// executing block as the leaf frame and synthetic [save] / [restore] /
// [re-exec] leaves for intermittency work, so a flamegraph shows which
// call paths — and which checkpoint sites under them — burn the energy.
type Flame struct {
	stack   []string
	weights map[string]float64
}

// NewFlame returns an empty folded-stack accumulator.
func NewFlame() *Flame {
	return &Flame{weights: map[string]float64{}}
}

// Event implements emulator.Observer.
func (f *Flame) Event(e emulator.Event) {
	switch e.Kind {
	case emulator.EvPowerFailure:
		// Volatile state is lost; the restored stack is replayed via
		// Resume block entries.
		f.stack = f.stack[:0]
	case emulator.EvBlockEnter:
		if e.Call && e.Fn != nil {
			f.stack = append(f.stack, e.Fn.Name)
		}
	case emulator.EvFuncReturn:
		if len(f.stack) > 0 {
			f.stack = f.stack[:len(f.stack)-1]
		}
	case emulator.EvCharge:
		f.weights[f.key(e)] += e.Energy
	}
}

func (f *Flame) key(e emulator.Event) string {
	var sb strings.Builder
	if len(f.stack) > 0 {
		sb.WriteString(strings.Join(f.stack, ";"))
	} else if e.Fn != nil {
		sb.WriteString(e.Fn.Name)
	}
	if e.Fn != nil && e.Block != nil {
		sb.WriteByte(';')
		sb.WriteString(e.Fn.Name)
		sb.WriteByte(':')
		sb.WriteString(e.Block.Name)
	}
	switch e.Class {
	case emulator.ChargeSave:
		sb.WriteString(";[save]")
	case emulator.ChargeRestore:
		sb.WriteString(";[restore]")
	case emulator.ChargeReexec:
		sb.WriteString(";[re-exec]")
	}
	return sb.String()
}

// WriteFolded emits one "stack weight" line per distinct stack, sorted,
// with weights in whole nanojoules (folded-stack consumers expect
// integer sample counts; 1 sample = 1 nJ).
func (f *Flame) WriteFolded(w io.Writer) error {
	keys := make([]string, 0, len(f.weights))
	for k := range f.weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, int64(math.Round(f.weights[k]))); err != nil {
			return err
		}
	}
	return nil
}
