package obs

import (
	"sync"
	"sync/atomic"

	"schematic/internal/emulator"
)

// SeqEvent is one emulator event stamped with its position in the run's
// stream. Seq is dense and zero-based: the Nth event a hub sees gets
// Seq N-1, so a subscriber can detect drops (a jump) and a resuming
// client can name exactly where it left off.
type SeqEvent struct {
	Seq   int64
	Event emulator.Event
}

// Hub is a concurrent fan-out for one emulation run's event stream. It
// is itself an emulator.Observer: the emulator delivers events
// synchronously from its hot loop, and the hub
//
//   - forwards each event to an optional inner observer (e.g. a
//     Collector building attribution ledgers),
//   - retains the most recent events in a fixed ring buffer so late or
//     resuming subscribers can replay history, and
//   - multicasts to any number of subscribers, each a bounded-window
//     cursor into that ring.
//
// Subscribers do not get per-event deliveries: each Sub is a cursor the
// reader advances by batch-copying pending events out of the ring
// (Next), woken by a coalescing one-slot signal channel (Ready). The
// publisher therefore pays one compare and one non-blocking channel
// send per subscriber per event — when the reader is already awake and
// draining, the send hits a full channel and costs nothing, so wake-ups
// amortize across whole batches instead of taxing every event.
//
// The hot-path contract is strict: Event never blocks and never
// allocates. A subscriber that falls more than its window behind the
// stream loses the oldest pending events — the loss is counted, per
// subscriber and hub-wide, never waited out — so a slow reader cannot
// stall the emulator. Fast readers (who stay within their window) see
// every event in order.
//
// The zero stages of observation stay free: a nil emulator observer
// skips event construction entirely (the hub is simply not attached),
// and a hub with no subscribers only appends to its preallocated ring.
type Hub struct {
	mu     sync.Mutex
	inner  emulator.Observer
	ring   []SeqEvent // fixed-size; event seq s lives at s % len(ring)
	next   int64      // events emitted so far == next seq to assign
	subs   []*Sub     // a slice, not a map: Event iterates it per event
	closed bool

	dropped atomic.Int64 // events lost across all subscribers
}

// DefaultRing is the per-run event retention used when NewHub is given
// a non-positive capacity.
const DefaultRing = 8192

// NewHub builds a hub retaining the last ring events (DefaultRing when
// ring <= 0). inner, when non-nil, receives every event synchronously
// under the hub's lock before fan-out; Sync grants readers the same
// lock, so inner's state can be snapshotted mid-run without a race.
func NewHub(ring int, inner emulator.Observer) *Hub {
	if ring <= 0 {
		ring = DefaultRing
	}
	return &Hub{
		inner: inner,
		ring:  make([]SeqEvent, ring),
	}
}

// Sub is one subscriber: a cursor into the hub's ring plus a one-slot
// wake channel. The reader loop is
//
//	for {
//	    n, open := sub.Next(buf)
//	    // handle buf[:n]
//	    if n == 0 {
//	        if !open { break }
//	        <-sub.Ready() // or select with a context/ticker
//	    }
//	}
//
// cursor, window, and limit are guarded by the hub's mutex.
type Sub struct {
	h       *Hub
	cursor  int64         // next seq this subscriber will read
	window  int64         // max live backlog before the oldest pending events drop
	limit   int64         // seq bound set by Unsubscribe; -1 = none
	sig     chan struct{} // capacity 1; a token means "check Next again"
	dropped atomic.Int64
}

// Ready is the subscriber's wake channel. A receive means events may be
// pending or the hub closed — call Next to find out. Signals coalesce:
// any number of publishes while the reader is busy collapse into one
// token, so a reader never queues stale wake-ups.
func (s *Sub) Ready() <-chan struct{} { return s.sig }

// Dropped counts events this subscriber lost by falling behind its
// window (or the ring). It is safe to read while the run is live.
func (s *Sub) Dropped() int64 { return s.dropped.Load() }

// Next copies pending events into buf in seq order, advancing the
// cursor, and reports whether the feed is still open. n == 0 with
// open true means "caught up — wait on Ready"; open false means the
// stream is complete (hub closed or subscriber detached, and every
// remaining event delivered). If the ring lapped the cursor while
// subscribed, the lost events are counted and the cursor jumps to the
// oldest retained event (the seq jump is the caller's gap signal).
func (s *Sub) Next(buf []SeqEvent) (n int, open bool) {
	h := s.h
	h.mu.Lock()
	defer h.mu.Unlock()
	lo := h.next - int64(len(h.ring))
	if lo < 0 {
		lo = 0
	}
	if s.cursor < lo { // lapped by the ring while subscribed
		d := lo - s.cursor
		s.cursor = lo
		s.dropped.Add(d)
		h.dropped.Add(d)
	}
	hi := h.next
	if s.limit >= 0 && s.limit < hi {
		hi = s.limit
	}
	for n < len(buf) && s.cursor < hi {
		buf[n] = h.ring[s.cursor%int64(len(h.ring))]
		n++
		s.cursor++
	}
	return n, s.cursor < hi || (s.limit < 0 && !h.closed)
}

// Event implements emulator.Observer. It never blocks: a subscriber
// whose live backlog exceeds its window has its cursor pushed forward
// (oldest pending events lost, drop counters incremented) rather than
// waited on, and the wake signal is a non-blocking send.
func (h *Hub) Event(e emulator.Event) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	if h.inner != nil {
		h.inner.Event(e)
	}
	h.ring[h.next%int64(len(h.ring))] = SeqEvent{Seq: h.next, Event: e}
	h.next++
	for _, s := range h.subs {
		if d := h.next - s.window - s.cursor; d > 0 {
			s.cursor += d
			s.dropped.Add(d)
			h.dropped.Add(d)
		}
		select {
		case s.sig <- struct{}{}:
		default: // reader already has a wake-up pending
		}
	}
	h.mu.Unlock()
}

// Subscribe registers a reader whose cursor starts at the first
// retained event with Seq > after (clamped to the oldest retained
// event; the caller detects the clamp as a seq jump). Replay and live
// feed are contiguous — the cursor advances through the same ring the
// publisher appends to, under the same lock, so no event between
// "history" and "live" can be missed.
//
// queue bounds the live backlog (1024 when <= 0): a reader more than
// queue events behind the publisher starts losing the oldest pending
// events. Already-retained history being replayed after the run is
// never clipped by the window — only a live publisher enforces it.
// Subscribing to a closed hub still replays the ring; Next reports
// open == false once it is drained.
func (h *Hub) Subscribe(after int64, queue int) *Sub {
	if queue <= 0 {
		queue = 1024
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	lo := h.next - int64(len(h.ring))
	if lo < 0 {
		lo = 0
	}
	cur := after + 1
	if cur < lo {
		cur = lo
	}
	s := &Sub{h: h, cursor: cur, window: int64(queue), limit: -1, sig: make(chan struct{}, 1)}
	if !h.closed {
		h.subs = append(h.subs, s)
	}
	s.sig <- struct{}{} // initial wake: drain the backlog (or observe the close)
	return s
}

// Unsubscribe detaches a subscriber: no further events are delivered
// past the detach point (Next drains what was already pending, then
// reports open == false). It is a no-op for subscribers already
// detached (or for a closed hub, where Next is bounded by the close
// instead).
func (h *Hub) Unsubscribe(s *Sub) {
	h.mu.Lock()
	for i, sub := range h.subs {
		if sub == s {
			h.subs = append(h.subs[:i], h.subs[i+1:]...)
			s.limit = h.next
			select {
			case s.sig <- struct{}{}:
			default:
			}
			break
		}
	}
	h.mu.Unlock()
}

// Close marks the run finished: subscribers are woken one last time
// (readers still drain whatever is pending; Next then reports
// open == false), and later events are ignored. The ring stays
// readable — Subscribe keeps working for replay. Close is idempotent.
func (h *Hub) Close() {
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		for _, s := range h.subs {
			select {
			case s.sig <- struct{}{}:
			default:
			}
		}
		h.subs = nil
	}
	h.mu.Unlock()
}

// Emitted is the number of events the hub has seen (and therefore the
// Seq the next event would get).
func (h *Hub) Emitted() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.next
}

// OldestRetained is the lowest Seq still in the ring (0 until the ring
// wraps). Meaningless before any event was emitted.
func (h *Hub) OldestRetained() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	lo := h.next - int64(len(h.ring))
	if lo < 0 {
		lo = 0
	}
	return lo
}

// Retained is the number of events currently replayable from the ring.
func (h *Hub) Retained() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.next < int64(len(h.ring)) {
		return h.next
	}
	return int64(len(h.ring))
}

// Dropped is the total number of events lost across all subscribers.
func (h *Hub) Dropped() int64 { return h.dropped.Load() }

// Subscribers is the live subscriber count.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Sync runs f under the hub's lock, excluding Event. Use it to read the
// inner observer's state (e.g. Collector ledgers) while the run is
// live. f must not call back into the hub.
func (h *Hub) Sync(f func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	f()
}
