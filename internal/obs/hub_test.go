package obs_test

import (
	"sync"
	"testing"
	"time"

	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/obs"
)

// drainSub reads a subscriber to completion (open == false), returning
// every delivered event in order.
func drainSub(sub *obs.Sub) []obs.SeqEvent {
	var out []obs.SeqEvent
	buf := make([]obs.SeqEvent, 128)
	for {
		n, open := sub.Next(buf)
		out = append(out, buf[:n]...)
		if n == 0 {
			if !open {
				return out
			}
			<-sub.Ready()
		}
	}
}

// TestHubStress32Subscribers runs one emulation fanned out to 32
// subscribers, several deliberately slow with tiny windows. The run
// must finish without ever blocking on a reader; fast subscribers must
// see the whole stream gaplessly; and every subscriber's
// received+dropped counts must reconcile exactly with the number of
// events emitted. Run under -race this also proves the
// subscribe/fan-out/close paths are data-race free.
func TestHubStress32Subscribers(t *testing.T) {
	const nSubs = 32
	const nSlow = 6 // subscribers 0..5 are slow with 4-event windows

	col := obs.NewCollector()
	hub := obs.NewHub(1<<16, col)

	type tally struct {
		received int64
		gapless  bool // seqs were 0,1,2,... with no holes
	}
	subs := make([]*obs.Sub, nSubs)
	tallies := make([]tally, nSubs)
	var wg sync.WaitGroup
	for i := 0; i < nSubs; i++ {
		queue := 1 << 16 // fast: window covers every event
		if i < nSlow {
			queue = 4
		}
		sub := hub.Subscribe(-1, queue)
		subs[i] = sub
		wg.Add(1)
		go func(i int, sub *obs.Sub) {
			defer wg.Done()
			next, gapless := int64(0), true
			slowFor := 0
			if i < nSlow {
				slowFor = 32 // stall on the first events to force drops
			}
			buf := make([]obs.SeqEvent, 16)
			for {
				n, open := sub.Next(buf)
				for j := 0; j < n; j++ {
					se := buf[j]
					if se.Seq != next {
						gapless = false
					}
					next = se.Seq + 1
					tallies[i].received++
					if slowFor > 0 {
						slowFor--
						time.Sleep(500 * time.Microsecond)
					}
				}
				if n == 0 {
					if !open {
						break
					}
					<-sub.Ready()
				}
			}
			tallies[i].gapless = gapless
		}(i, sub)
	}

	start := time.Now()
	res := runObserved(t, hub)
	emuElapsed := time.Since(start)
	hub.Close()
	wg.Wait()

	emitted := hub.Emitted()
	if emitted == 0 {
		t.Fatal("no events emitted")
	}
	// The emulator side must not have been stalled by the sleeping
	// readers: the whole run is a few thousand events of in-memory work.
	if emuElapsed > 10*time.Second {
		t.Fatalf("emulation took %v — a slow subscriber blocked the hot path", emuElapsed)
	}

	var droppedSum int64
	for i := 0; i < nSubs; i++ {
		got := tallies[i].received + subs[i].Dropped()
		if got != emitted {
			t.Errorf("sub %d: received %d + dropped %d = %d, want %d emitted",
				i, tallies[i].received, subs[i].Dropped(), got, emitted)
		}
		if i >= nSlow {
			if !tallies[i].gapless || subs[i].Dropped() != 0 {
				t.Errorf("fast sub %d: gapless=%v dropped=%d, want a gapless full stream",
					i, tallies[i].gapless, subs[i].Dropped())
			}
		}
		droppedSum += subs[i].Dropped()
	}
	// The tiny-queue sleepers must actually have lost events, or the
	// stress proved nothing.
	if droppedSum == 0 {
		t.Error("no subscriber dropped anything — slow-path never exercised")
	}
	if hub.Dropped() != droppedSum {
		t.Errorf("hub dropped %d, subscriber sum %d", hub.Dropped(), droppedSum)
	}
	// The inner observer saw every event under the same lock.
	if err := col.Reconcile(res); err != nil {
		t.Errorf("inner collector diverged: %v", err)
	}
}

// TestHubBacklogReplayAndResume checks ring replay: subscribing after
// the run ends replays the retained stream, resuming from a mid-stream
// seq replays exactly the suffix, and a ring smaller than the stream
// starts the backlog at the oldest retained event (the caller-visible
// gap signal).
func TestHubBacklogReplayAndResume(t *testing.T) {
	hub := obs.NewHub(1<<16, nil)
	runObserved(t, hub)
	hub.Close()

	emitted := hub.Emitted()
	// A window of 1 must not clip replay of retained history: the
	// window bounds a live publisher's backlog, not the ring.
	all := drainSub(hub.Subscribe(-1, 1))
	if int64(len(all)) != emitted {
		t.Fatalf("full replay: %d events, want %d", len(all), emitted)
	}
	for i, se := range all {
		if se.Seq != int64(i) {
			t.Fatalf("replay seq[%d] = %d", i, se.Seq)
		}
	}

	after := emitted / 2
	suffix := drainSub(hub.Subscribe(after, 1))
	if int64(len(suffix)) != emitted-after-1 {
		t.Fatalf("resume from %d: %d events, want %d", after, len(suffix), emitted-after-1)
	}
	if len(suffix) > 0 && suffix[0].Seq != after+1 {
		t.Fatalf("resume from %d starts at %d", after, suffix[0].Seq)
	}

	// A hub whose ring is smaller than the stream evicts the prefix.
	small := obs.NewHub(64, nil)
	runObserved(t, small)
	small.Close()
	if small.OldestRetained() == 0 {
		t.Fatal("64-slot ring never wrapped — fixture too small")
	}
	if small.Retained() != 64 {
		t.Fatalf("retained %d, want 64", small.Retained())
	}
	got := drainSub(small.Subscribe(-1, 1))
	if int64(len(got)) != 64 || got[0].Seq != small.OldestRetained() {
		t.Fatalf("evicted replay: %d events from %d, want 64 from %d",
			len(got), got[0].Seq, small.OldestRetained())
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Fatalf("evicted replay not contiguous at %d", i)
		}
	}
}

// TestHubEventAllocFree proves the hot path stays allocation-free with
// no subscribers (ring append only) and with an attached subscriber
// within its window (ring append + wake signal).
func TestHubEventAllocFree(t *testing.T) {
	ev := emulator.Event{Kind: emulator.EvCharge, Class: emulator.ChargeCompute, Energy: 1}

	noSubs := obs.NewHub(1024, nil)
	if allocs := testing.AllocsPerRun(200, func() { noSubs.Event(ev) }); allocs != 0 {
		t.Errorf("no-subscriber Event: %v allocs/op, want 0", allocs)
	}

	withSub := obs.NewHub(1024, nil)
	sub := withSub.Subscribe(-1, 1<<20)
	defer withSub.Unsubscribe(sub)
	if allocs := testing.AllocsPerRun(200, func() { withSub.Event(ev) }); allocs != 0 {
		t.Errorf("one-subscriber Event: %v allocs/op, want 0", allocs)
	}
}

// TestNilObserverRunAllocBaseline re-pins the emulator-side invariant
// the hub must not disturb: an unobserved intermittent run allocates a
// fixed setup cost, independent of how long the program runs (no
// per-instruction or per-event allocation). The per-instruction check
// lives in internal/emulator; this guards it from the obs side, where
// hub plumbing is wired up.
func TestNilObserverRunAllocBaseline(t *testing.T) {
	short, long := fixedProgram(t, 4), fixedProgram(t, 64)
	cfg := emulator.Config{
		Model:        energy.MSP430FR5969(),
		VMSize:       2048,
		Intermittent: true,
		EB:           400,
	}
	allocsShort := testing.AllocsPerRun(5, func() {
		if _, err := emulator.Run(short, cfg); err != nil {
			t.Fatal(err)
		}
	})
	allocsLong := testing.AllocsPerRun(5, func() {
		if _, err := emulator.Run(long, cfg); err != nil {
			t.Fatal(err)
		}
	})
	// 16x the work must not mean materially more allocations.
	if allocsLong > allocsShort+8 {
		t.Errorf("nil-observer allocs grew with run length: %v (n=4) -> %v (n=64)",
			allocsShort, allocsLong)
	}
}

// TestHubCloseSemantics: Close is idempotent, post-close events are
// ignored, Unsubscribe after Close is a no-op, and a subscriber
// detached mid-run stops at the detach point without disturbing others.
func TestHubCloseSemantics(t *testing.T) {
	hub := obs.NewHub(16, nil)
	a := hub.Subscribe(-1, 16)
	b := hub.Subscribe(-1, 16)

	ev := emulator.Event{Kind: emulator.EvBlockEnter}
	hub.Event(ev)
	hub.Unsubscribe(a)
	hub.Event(ev)
	if got := len(drainSub(a)); got != 1 {
		t.Errorf("detached sub delivered %d events, want 1 (pre-detach only)", got)
	}
	hub.Close()
	hub.Close() // idempotent
	hub.Event(ev)
	hub.Unsubscribe(b) // no-op after Close
	if hub.Emitted() != 2 {
		t.Errorf("emitted %d, want 2 (post-close event ignored)", hub.Emitted())
	}
	if got := len(drainSub(b)); got != 2 {
		t.Errorf("sub b drained %d events, want 2", got)
	}
	if hub.Subscribers() != 0 {
		t.Errorf("subscribers %d after close", hub.Subscribers())
	}
}
