package obs

import (
	"bufio"
	"encoding/json"
	"io"

	"schematic/internal/emulator"
)

// Record is the JSON wire form of one emulator event, shared by the
// NDJSON stream exporter and the schematicd SSE feed. Fields are
// omitted when not meaningful for the kind, keeping the (potentially
// per-instruction) stream compact.
type Record struct {
	Kind   string  `json:"k"`
	Cycle  int64   `json:"cycle"`
	Step   int64   `json:"step,omitempty"`
	Fn     string  `json:"fn,omitempty"`
	Block  string  `json:"block,omitempty"`
	Var    string  `json:"var,omitempty"`
	Class  string  `json:"class,omitempty"`
	NJ     float64 `json:"nj,omitempty"`
	Site   *int    `json:"site,omitempty"` // pointer: site 0 is valid, -1 = boot
	Bytes  int     `json:"bytes,omitempty"`
	CapNJ  float64 `json:"cap_nj,omitempty"`
	Point  string  `json:"point,omitempty"` // injection: which point kind fired
	Seq    int64   `json:"seq,omitempty"`   // injection: the point's occurrence ordinal
	Call   bool    `json:"call,omitempty"`
	Resume bool    `json:"resume,omitempty"`
}

// NewRecord converts an emulator event to its wire form.
func NewRecord(e emulator.Event) Record {
	rec := Record{
		Kind:   e.Kind.String(),
		Cycle:  e.Cycle,
		Step:   e.Step,
		Site:   siteOf(e),
		Bytes:  e.Bytes,
		Call:   e.Call,
		Resume: e.Resume,
	}
	if e.Fn != nil {
		rec.Fn = e.Fn.Name
	}
	if e.Block != nil {
		rec.Block = e.Block.Name
	}
	if e.Var != nil {
		rec.Var = e.Var.Name
	}
	switch e.Kind {
	case emulator.EvCharge:
		rec.Class = e.Class.String()
		rec.NJ = e.Energy
	case emulator.EvSave, emulator.EvRestore:
		rec.NJ = e.Energy
	case emulator.EvPowerFailure, emulator.EvSleepStart, emulator.EvSleepEnd:
		rec.CapNJ = e.CapEnergy
	case emulator.EvInjection:
		rec.CapNJ = e.CapEnergy
		rec.Point = e.Point.String()
		rec.Seq = e.Seq
	}
	return rec
}

// StreamWriter is an emulator.Observer that writes every event as one
// JSON line. Writes are buffered; call Flush when the run ends. The
// first write error is latched and subsequent events are dropped.
type StreamWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewStreamWriter wraps w in a buffered NDJSON event sink.
func NewStreamWriter(w io.Writer) *StreamWriter {
	bw := bufio.NewWriter(w)
	return &StreamWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// siteOf reports the Site field for the kinds where it is meaningful.
func siteOf(e emulator.Event) *int {
	switch e.Kind {
	case emulator.EvCheckpointHit, emulator.EvSave, emulator.EvRestore,
		emulator.EvSleepStart, emulator.EvSleepEnd, emulator.EvPowerFailure,
		emulator.EvReexecStart, emulator.EvReexecEnd, emulator.EvInjection:
		s := e.Site
		return &s
	case emulator.EvCharge:
		switch e.Class {
		case emulator.ChargeSave, emulator.ChargeRestore, emulator.ChargeReexec:
			s := e.Site
			return &s
		}
	}
	return nil
}

// Event implements emulator.Observer.
func (s *StreamWriter) Event(e emulator.Event) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(NewRecord(e))
}

// Flush drains the buffer and returns the first error seen (encode or
// write), if any.
func (s *StreamWriter) Flush() error {
	if s.err != nil {
		return s.err
	}
	s.err = s.bw.Flush()
	return s.err
}
