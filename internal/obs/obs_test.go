package obs_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedProgram builds a deterministic two-function program: main calls
// sum(), which boots through a wait-style checkpoint (site 0: save,
// sleep, restore) and then loops n times accumulating into a
// VM-allocated variable, with a rollback checkpoint (site 1) every
// other iteration. Under a small capacitor the rollback runtime drains
// the supply between saves, so the run exercises saves, sleeps,
// restores, power failures and re-execution — every event kind except
// poison reads.
func fixedProgram(t testing.TB, n int) *ir.Module {
	t.Helper()
	m := &ir.Module{Name: "fixed"}
	acc := m.NewGlobal("acc", 1)
	idx := m.NewGlobal("i", 1)

	sum := m.NewFunc("sum", nil, true)
	entry := sum.NewBlock("entry")
	head := sum.NewBlock("head")
	body := sum.NewBlock("body")
	done := sum.NewBlock("done")

	b := ir.NewBuilder(sum).At(entry)
	b.Emit(&ir.Checkpoint{ID: 0, Kind: ir.CkWait}) // boot checkpoint
	zero := b.Const(0)
	b.Store(acc, zero)
	b.Store(idx, zero)
	b.Jmp(head)

	b.At(head)
	i := b.Load(idx)
	lim := b.Const(int64(n))
	c := b.Bin(ir.OpLt, i, lim)
	b.Br(c, body, done)

	b.At(body)
	a := b.Load(acc)
	i2 := b.Load(idx)
	a2 := b.Bin(ir.OpAdd, a, i2)
	b.Store(acc, a2)
	b.Emit(&ir.Checkpoint{ID: 1, Kind: ir.CkRollback, Every: 2,
		Save: []*ir.Var{acc}, Restore: []*ir.Var{acc}})
	one := b.Const(1)
	i3 := b.Bin(ir.OpAdd, i2, one)
	b.Store(idx, i3)
	b.Jmp(head)

	b.At(done)
	out := b.Load(acc)
	b.RetVal(out)

	for _, blk := range sum.Blocks {
		blk.Alloc = map[*ir.Var]bool{acc: true}
	}

	mainFn := m.NewFunc("main", nil, false)
	mb := ir.NewBuilder(mainFn)
	r := mb.Call(sum)
	mb.Out(r)
	mb.Ret()

	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func runObserved(t testing.TB, obsv emulator.Observer) *emulator.Result {
	t.Helper()
	m := fixedProgram(t, 8)
	res, err := emulator.Run(m, emulator.Config{
		Model:        energy.MSP430FR5969(),
		VMSize:       2048,
		Intermittent: true,
		EB:           400,
		Observer:     obsv,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Verdict != emulator.Completed {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if want := int64(0 + 1 + 2 + 3 + 4 + 5 + 6 + 7); len(res.Output) != 1 || res.Output[0] != want {
		t.Fatalf("output = %v, want [%d]", res.Output, want)
	}
	return res
}

func TestCollectorReconciles(t *testing.T) {
	col := obs.NewCollector()
	res := runObserved(t, col)
	if res.PowerFailures == 0 || res.Sleeps == 0 {
		t.Fatalf("program did not exercise intermittency: %+v", res)
	}
	if err := col.Reconcile(res); err != nil {
		t.Fatal(err)
	}
	if got := col.PowerFailures; got != int64(res.PowerFailures) {
		t.Errorf("collector failures = %d, result %d", got, res.PowerFailures)
	}
	if got := col.Sleeps; got != int64(res.Sleeps) {
		t.Errorf("collector sleeps = %d, result %d", got, res.Sleeps)
	}
	sites := col.Sites()
	var saves, restores int64
	for _, s := range sites {
		saves += s.Saves
		restores += s.Restores
	}
	if saves != int64(res.Saves) {
		t.Errorf("site saves = %d, result %d", saves, res.Saves)
	}
	if restores != int64(res.Restores) {
		t.Errorf("site restores = %d, result %d", restores, res.Restores)
	}
	// Site 1 fires every loop iteration but saves only every other one
	// (conditional checkpointing); fires must strictly exceed saves.
	for _, s := range sites {
		if s.Site == 1 && s.Fires <= s.Saves {
			t.Errorf("site 1: fires %d <= saves %d", s.Fires, s.Saves)
		}
	}
	// Hottest-site ordering is by total energy, descending.
	top := col.TopSites(10)
	for i := 1; i < len(top); i++ {
		if top[i-1].Total() < top[i].Total() {
			t.Errorf("TopSites not sorted: %f < %f", top[i-1].Total(), top[i].Total())
		}
	}
}

func TestFunctionsAggregateBlocks(t *testing.T) {
	col := obs.NewCollector()
	runObserved(t, col)
	var blockCompute float64
	for _, b := range col.Blocks() {
		blockCompute += b.Compute
	}
	var fnCompute float64
	for _, f := range col.Functions() {
		fnCompute += f.Compute
	}
	if diff := blockCompute - fnCompute; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("function aggregate %f != block sum %f", fnCompute, blockCompute)
	}
}

// TestRenderDeterministic: everything user-visible the collector and
// flame derive from their internal maps must be identical when computed
// twice — Go randomizes map iteration per range statement, so any
// map-order float accumulation or unsorted render shows up as a
// byte-level diff between two back-to-back calls.
func TestRenderDeterministic(t *testing.T) {
	col := obs.NewCollector()
	fl := obs.NewFlame()
	res := runObserved(t, emulator.MultiObserver(col, fl))

	render := func() string {
		var sb bytes.Buffer
		col.RenderSites(&sb)
		if err := fl.WriteFolded(&sb); err != nil {
			t.Fatal(err)
		}
		for _, f := range col.Functions() {
			fmt.Fprintf(&sb, "%s %v %v %v\n", f.Func, f.Compute, f.VMAccess, f.NVMAccess)
		}
		fmt.Fprintf(&sb, "attributed %v\n", col.AttributedTotal())
		return sb.String()
	}
	first := render()
	for i := 0; i < 8; i++ {
		if got := render(); got != first {
			t.Fatalf("render %d differs from first:\n%s\n---\n%s", i+2, got, first)
		}
		// Reconcile sums the same floats; a changed accumulation order
		// could flip it across the tolerance on a borderline run.
		if err := col.Reconcile(res); err != nil {
			t.Fatal(err)
		}
	}
}

// golden compares got against testdata/name, rewriting it under -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden file (re-run with -update after intentional changes)\ngot:\n%s", name, got)
	}
}

// TestGoldenExports pins the output shapes of all three exporters on the
// fixed program: the Chrome trace timeline, the folded energy stacks,
// and the raw NDJSON event stream.
func TestGoldenExports(t *testing.T) {
	tl := obs.NewTimeline(energy.MSP430FR5969().EnergyPerCycle)
	fl := obs.NewFlame()
	var ndjson bytes.Buffer
	sw := obs.NewStreamWriter(&ndjson)
	runObserved(t, emulator.MultiObserver(tl, fl, sw))
	if err := sw.Flush(); err != nil {
		t.Fatalf("ndjson: %v", err)
	}

	var timeline bytes.Buffer
	if err := tl.WriteChromeTrace(&timeline); err != nil {
		t.Fatalf("timeline: %v", err)
	}
	var folded bytes.Buffer
	if err := fl.WriteFolded(&folded); err != nil {
		t.Fatalf("folded: %v", err)
	}

	golden(t, "timeline.json", timeline.Bytes())
	golden(t, "folded.txt", folded.Bytes())
	golden(t, "events.ndjson", ndjson.Bytes())
}
