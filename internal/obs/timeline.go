package obs

import (
	"encoding/json"
	"io"
	"math"

	"schematic/internal/emulator"
)

// Chrome trace-event timestamps are nominally microseconds; the timeline
// uses one tick per emulated cycle instead, so a Perfetto "µs" reads as
// "cycle". The thread lanes of the single emulated process:
const (
	tidPower = 1 // on-periods, sleeps, power failures
	tidCkpt  = 2 // checkpoint save/restore spans
	tidExec  = 3 // re-execution spans
)

// chromeEvent is one record of the Chrome trace-event format (ph "X" =
// complete span, "i" = instant, "M" = metadata). Field order is fixed so
// the JSON output is byte-stable for golden tests.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// Timeline is an emulator.Observer that builds a Perfetto-loadable
// Chrome trace: on-periods, sleeps, power failures, checkpoint
// save/restore spans and re-execution spans. Per-instruction events are
// not recorded, so memory stays proportional to the number of power
// events, not the run length.
type Timeline struct {
	energyPerCycle float64
	events         []chromeEvent

	onStart     int64
	onOpen      bool
	reexecStart int64
	reexecSite  int
	reexecOpen  bool
	lastCycle   int64
}

// NewTimeline builds a timeline; energyPerCycle (the model's
// EnergyPerCycle) sizes checkpoint spans, whose duration is
// energy-proportional in the emulator's time accounting.
func NewTimeline(energyPerCycle float64) *Timeline {
	tl := &Timeline{energyPerCycle: energyPerCycle, onOpen: true}
	for _, m := range []struct {
		tid  int
		name string
	}{{tidPower, "power"}, {tidCkpt, "checkpoint"}, {tidExec, "exec"}} {
		tl.events = append(tl.events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: m.tid,
			Args: map[string]any{"name": m.name},
		})
	}
	return tl
}

func (tl *Timeline) span(name string, tid int, ts, dur int64, args map[string]any) {
	tl.events = append(tl.events, chromeEvent{
		Name: name, Ph: "X", Ts: ts, Dur: dur, Pid: 1, Tid: tid, Args: args,
	})
}

func (tl *Timeline) instant(name string, tid int, ts int64, args map[string]any) {
	tl.events = append(tl.events, chromeEvent{
		Name: name, Ph: "i", Ts: ts, Pid: 1, Tid: tid, S: "t", Args: args,
	})
}

func (tl *Timeline) closeOn(cycle int64) {
	if !tl.onOpen {
		return
	}
	tl.onOpen = false
	tl.span("on", tidPower, tl.onStart, cycle-tl.onStart, nil)
}

func (tl *Timeline) ckCycles(energy float64) int64 {
	if tl.energyPerCycle <= 0 {
		return 0
	}
	return int64(energy / tl.energyPerCycle)
}

// Event implements emulator.Observer.
func (tl *Timeline) Event(e emulator.Event) {
	if e.Cycle > tl.lastCycle {
		tl.lastCycle = e.Cycle
	}
	switch e.Kind {
	case emulator.EvPowerFailure:
		tl.closeOn(e.Cycle)
		tl.instant("power failure", tidPower, e.Cycle, map[string]any{
			"capacitor_nj": round3(e.CapEnergy), "site": e.Site,
		})
		tl.onStart, tl.onOpen = e.Cycle, true
	case emulator.EvInjection:
		tl.instant("injection "+e.Point.String(), tidPower, e.Cycle, map[string]any{
			"point": e.Point.String(), "seq": e.Seq, "site": e.Site,
		})
	case emulator.EvSleepStart:
		tl.closeOn(e.Cycle)
		tl.instant("sleep", tidPower, e.Cycle, map[string]any{"site": e.Site})
	case emulator.EvSleepEnd:
		tl.onStart, tl.onOpen = e.Cycle, true
	case emulator.EvSave:
		tl.span("save "+SiteName(e.Site), tidCkpt, e.Cycle, tl.ckCycles(e.Energy), map[string]any{
			"site": e.Site, "bytes": e.Bytes, "nj": round3(e.Energy),
		})
	case emulator.EvRestore:
		tl.span("restore "+SiteName(e.Site), tidCkpt, e.Cycle, tl.ckCycles(e.Energy), map[string]any{
			"site": e.Site, "bytes": e.Bytes, "nj": round3(e.Energy),
		})
	case emulator.EvReexecStart:
		tl.reexecStart, tl.reexecSite, tl.reexecOpen = e.Cycle, e.Site, true
	case emulator.EvReexecEnd:
		if tl.reexecOpen {
			tl.reexecOpen = false
			tl.span("re-exec", tidExec, tl.reexecStart, e.Cycle-tl.reexecStart,
				map[string]any{"site": tl.reexecSite})
		}
	}
}

// round3 keeps args readable and their textual form stable.
func round3(x float64) float64 { return math.Round(x*1000) / 1000 }

// WriteChromeTrace emits the accumulated timeline as Chrome trace-event
// JSON (load in Perfetto / chrome://tracing). Open spans are closed at
// the last observed cycle; the timeline remains usable afterwards.
func (tl *Timeline) WriteChromeTrace(w io.Writer) error {
	events := append([]chromeEvent(nil), tl.events...)
	if tl.onOpen {
		events = append(events, chromeEvent{
			Name: "on", Ph: "X", Ts: tl.onStart, Dur: tl.lastCycle - tl.onStart, Pid: 1, Tid: tidPower,
		})
	}
	if tl.reexecOpen {
		events = append(events, chromeEvent{
			Name: "re-exec", Ph: "X", Ts: tl.reexecStart, Dur: tl.lastCycle - tl.reexecStart,
			Pid: 1, Tid: tidExec, Args: map[string]any{"site": tl.reexecSite},
		})
	}
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{events, "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
