package opt

import (
	"schematic/internal/ir"
)

// foldConstants performs local constant propagation and folding within each
// block: BinOps whose operands are known constants are replaced by Const
// instructions (with the emulator's exact arithmetic — a trapping
// division is never folded), algebraic identities are reduced, and a
// conditional branch on a known constant becomes an unconditional jump.
func foldConstants(f *ir.Func, st *Stats) bool {
	changed := false
	for _, b := range f.Blocks {
		consts := map[ir.Reg]int64{}
		for i, in := range b.Instrs {
			switch x := in.(type) {
			case *ir.Const:
				consts[x.Dst] = x.Val

			case *ir.BinOp:
				av, aok := consts[x.A]
				var bv int64
				bok := false
				if !x.Op.IsUnary() {
					bv, bok = consts[x.B]
				}
				if aok && (x.Op.IsUnary() || bok) {
					if v, err := ir.EvalOp(x.Op, av, bv); err == nil {
						b.Instrs[i] = &ir.Const{Dst: x.Dst, Val: v}
						consts[x.Dst] = v
						st.Folded++
						changed = true
						continue
					}
				}
				if n, ok := simplifyAlgebraic(x, av, aok, bv, bok); ok {
					b.Instrs[i] = n
					if c, isConst := n.(*ir.Const); isConst {
						consts[c.Dst] = c.Val
					} else {
						delete(consts, x.Dst)
					}
					st.Simplified++
					changed = true
					continue
				}
				delete(consts, x.Dst)

			case *ir.Br:
				if v, ok := consts[x.Cond]; ok {
					t := x.Then
					if v == 0 {
						t = x.Else
					}
					b.Instrs[i] = &ir.Jmp{Target: t}
					st.Branches++
					changed = true
				} else if x.Then == x.Else {
					b.Instrs[i] = &ir.Jmp{Target: x.Then}
					st.Branches++
					changed = true
				}

			default:
				if d, ok := ir.Def(in); ok {
					delete(consts, d)
				}
			}
		}
	}
	return changed
}

// move builds the IR's register-copy idiom (dst = src | src).
func move(dst, src ir.Reg) *ir.BinOp {
	return &ir.BinOp{Dst: dst, Op: ir.OpOr, A: src, B: src}
}

// simplifyAlgebraic reduces a BinOp with one known-constant operand using
// identities that hold for the emulator's exact int64 arithmetic:
//
//	x+0, 0+x, x-0, x|0, 0|x, x^0, 0^x, x<<0, x>>0, x*1, 1*x, x/1  → move
//	x*0, 0*x, x&0, 0&x, 0/x†, 0<<x, 0>>x                           → const 0
//
// († only when the divisor is a known non-zero constant, so the trap is
// preserved.) The zero-shift cases require the shift amount in range,
// which a constant 0 trivially is.
func simplifyAlgebraic(x *ir.BinOp, av int64, aok bool, bv int64, bok bool) (ir.Instr, bool) {
	if x.Op.IsUnary() {
		return nil, false
	}
	aZero, bZero := aok && av == 0, bok && bv == 0
	aOne, bOne := aok && av == 1, bok && bv == 1
	if x.A == x.B && (x.Op == ir.OpSub || x.Op == ir.OpXor) {
		return &ir.Const{Dst: x.Dst, Val: 0}, true
	}
	switch x.Op {
	case ir.OpAdd:
		if bZero {
			return move(x.Dst, x.A), true
		}
		if aZero {
			return move(x.Dst, x.B), true
		}
	case ir.OpSub:
		if bZero {
			return move(x.Dst, x.A), true
		}
	case ir.OpMul:
		if bOne {
			return move(x.Dst, x.A), true
		}
		if aOne {
			return move(x.Dst, x.B), true
		}
		if aZero || bZero {
			return &ir.Const{Dst: x.Dst, Val: 0}, true
		}
	case ir.OpDiv:
		if bOne {
			return move(x.Dst, x.A), true
		}
		if aZero && bok && bv != 0 {
			return &ir.Const{Dst: x.Dst, Val: 0}, true
		}
	case ir.OpRem:
		if bOne {
			return &ir.Const{Dst: x.Dst, Val: 0}, true
		}
	case ir.OpOr, ir.OpXor:
		if bZero && x.A != x.B { // x|x is the move idiom; leave it alone
			return move(x.Dst, x.A), true
		}
		if aZero && x.A != x.B {
			return move(x.Dst, x.B), true
		}
	case ir.OpAnd:
		if aZero || bZero {
			return &ir.Const{Dst: x.Dst, Val: 0}, true
		}
	case ir.OpShl, ir.OpShr:
		if bZero {
			return move(x.Dst, x.A), true
		}
		if aZero {
			return &ir.Const{Dst: x.Dst, Val: 0}, true
		}
	}
	return nil, false
}
