package opt

import (
	"schematic/internal/ir"
)

// propagateCopies forwards register copies within each block: after
// `dst = or src, src` (the IR's move idiom), later uses of dst read src
// directly until either register is redefined. The copy itself becomes
// dead and falls to DCE.
func propagateCopies(f *ir.Func, st *Stats) bool {
	changed := false
	for _, b := range f.Blocks {
		copies := map[ir.Reg]ir.Reg{} // dst -> src, both currently valid
		for _, in := range b.Instrs {
			// Resolve uses through the active copies (transitively: a
			// chain of moves collapses to its ultimate source).
			rewriteUses(in, func(r ir.Reg) ir.Reg {
				n := 0
				for {
					src, ok := copies[r]
					if !ok {
						return r
					}
					r = src
					if n++; n > len(copies) {
						return r // cycle guard; cannot happen with valid maps
					}
					st.Copies++
					changed = true
				}
			})
			d, hasDef := ir.Def(in)
			if !hasDef {
				continue
			}
			// The definition invalidates d as a copy destination and as
			// any copy's source.
			delete(copies, d)
			for dst, src := range copies {
				if src == d {
					delete(copies, dst)
				}
			}
			if x, ok := in.(*ir.BinOp); ok && x.Op == ir.OpOr && x.A == x.B && x.A != x.Dst {
				copies[x.Dst] = x.A
			}
		}
	}
	return changed
}
