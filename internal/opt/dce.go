package opt

import (
	"schematic/internal/dataflow"
	"schematic/internal/ir"
)

// eliminateDeadCode removes instructions whose defined register is dead
// and whose execution has no observable effect. Stores, calls, output,
// checkpoints, loop annotations, terminators, and potentially-trapping
// divisions always stay.
func eliminateDeadCode(f *ir.Func, st *Stats) bool {
	rl := dataflow.LiveRegs(f)
	changed := false
	sabotaged := false
	for _, b := range f.Blocks {
		live := rl.OutSet(b)
		kept := make([]ir.Instr, 0, len(b.Instrs))
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			if SabotageDropStore && !sabotaged {
				if _, isStore := in.(*ir.Store); isStore {
					sabotaged = true
					st.DeadInstrs++
					changed = true
					continue
				}
			}
			d, hasDef := ir.Def(in)
			if hasDef && !live.Has(int(d)) && !hasSideEffect(in) {
				st.DeadInstrs++
				changed = true
				continue
			}
			kept = append(kept, in)
			if hasDef {
				live.Clear(int(d))
			}
			for _, u := range ir.Uses(in) {
				live.Set(int(u))
			}
		}
		if len(kept) != len(b.Instrs) {
			for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
				kept[i], kept[j] = kept[j], kept[i]
			}
			b.Instrs = kept
		}
	}
	return changed
}
