package opt

import (
	"math/rand"
	"testing"
	"testing/quick"

	schematic "schematic/internal/core"
	"schematic/internal/emulator"
	"schematic/internal/fuzzgen"
	"schematic/internal/ir"
	"schematic/internal/minic"
	"schematic/internal/trace"
)

// TestFuzzOptimizerPreservesBehaviour compiles random programs, optimizes
// them, and demands bit-identical output against the unoptimized module on
// the same inputs — including programs that trap (the trap must be
// preserved, though possibly at a different instruction).
func TestFuzzOptimizerPreservesBehaviour(t *testing.T) {
	seeds := int64(40)
	if testing.Short() {
		seeds = 8
	}
	shrunk := 0
	for seed := int64(0); seed < seeds; seed++ {
		src := fuzzgen.Generate(rand.New(rand.NewSource(seed^0x09b7)), fuzzgen.DefaultOptions())
		m, err := minic.Compile("fuzz", src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		inputs := trace.RandomInputs(m, rand.New(rand.NewSource(seed+123)))
		ref, refErr := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs, MaxSteps: 30_000_000})

		om := ir.Clone(m)
		before := instrCountAll(om)
		if _, err := Optimize(om); err != nil {
			t.Fatalf("seed %d: Optimize: %v", seed, err)
		}
		after := instrCountAll(om)
		if after > before {
			t.Errorf("seed %d: optimization grew the program: %d -> %d", seed, before, after)
		}
		if after < before {
			shrunk++
		}
		res, optErr := emulator.Run(om, emulator.Config{Model: model, Inputs: inputs, MaxSteps: 30_000_000})
		if (refErr != nil) != (optErr != nil) {
			t.Fatalf("seed %d: trap behaviour changed: ref=%v opt=%v", seed, refErr, optErr)
		}
		if refErr != nil {
			continue // both trapped; outputs up to the trap are unchecked, as in real compilers
		}
		if res.Verdict != ref.Verdict {
			t.Fatalf("seed %d: verdict %v vs %v", seed, res.Verdict, ref.Verdict)
		}
		if len(res.Output) != len(ref.Output) {
			t.Fatalf("seed %d: output length %d vs %d", seed, len(res.Output), len(ref.Output))
		}
		for i := range ref.Output {
			if res.Output[i] != ref.Output[i] {
				t.Fatalf("seed %d: output[%d] = %d, want %d\n%s", seed, i, res.Output[i], ref.Output[i], om.String())
			}
		}
	}
	if shrunk == 0 {
		t.Error("optimizer never shrank any fuzz program — passes are vacuous")
	}
}

// TestFuzzOptimizeThenSchematic runs the full production pipeline on random
// programs — optimize, profile, place checkpoints, validate, execute
// intermittently — and demands the paper's guarantees on the optimized
// module.
func TestFuzzOptimizeThenSchematic(t *testing.T) {
	seeds := int64(15)
	if testing.Short() {
		seeds = 5
	}
	applied := 0
	for seed := int64(0); seed < seeds; seed++ {
		src := fuzzgen.Generate(rand.New(rand.NewSource(seed^0x0d17)), fuzzgen.DefaultOptions())
		m, err := minic.Compile("fuzz", src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		if _, err := Optimize(m); err != nil {
			t.Fatalf("seed %d: Optimize: %v", seed, err)
		}
		prof, err := trace.Collect(m, trace.Options{Runs: 3, Seed: seed, Model: model, MaxSteps: 30_000_000})
		if err != nil {
			t.Fatalf("seed %d: profile: %v", seed, err)
		}
		inputs := trace.RandomInputs(m, rand.New(rand.NewSource(seed+77)))
		ref, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs, MaxSteps: 60_000_000})
		if err != nil || ref.Verdict != emulator.Completed {
			continue // trapping or huge programs are covered elsewhere
		}
		eb := prof.EBForTBPF(4_000)
		conf := schematic.Config{Model: model, Budget: eb, VMSize: 2048, Profile: prof}
		tr := ir.Clone(m)
		if _, err := schematic.Apply(tr, conf); err != nil {
			continue // honest infeasibility
		}
		applied++
		if err := schematic.Validate(tr, conf); err != nil {
			t.Fatalf("seed %d: Validate rejected optimized+placed module: %v", seed, err)
		}
		res, err := emulator.Run(tr, emulator.Config{
			Model: model, VMSize: 2048, Intermittent: true, EB: eb,
			Inputs: inputs, MaxSteps: 120_000_000,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Verdict != emulator.Completed || res.PowerFailures != 0 || res.Energy.Reexecution != 0 {
			t.Fatalf("seed %d: verdict=%v failures=%d reexec=%.1f",
				seed, res.Verdict, res.PowerFailures, res.Energy.Reexecution)
		}
		if res.UnsyncedReads != 0 {
			t.Fatalf("seed %d: %d poison reads", seed, res.UnsyncedReads)
		}
		for i := range ref.Output {
			if i >= len(res.Output) || res.Output[i] != ref.Output[i] {
				t.Fatalf("seed %d: output mismatch at %d", seed, i)
			}
		}
	}
	if applied == 0 {
		t.Fatal("no optimized fuzz program was ever transformable")
	}
	t.Logf("pipeline fuzz: %d optimized+placed runs verified", applied)
}

// TestOptimizerInvariants is a quick-check property: on arbitrary
// generator seeds, optimization keeps the module verifiable, is idempotent,
// and never grows the instruction count.
func TestOptimizerInvariants(t *testing.T) {
	check := func(seed int64) bool {
		src := fuzzgen.Generate(rand.New(rand.NewSource(seed)), fuzzgen.DefaultOptions())
		m, err := minic.Compile("fuzz", src)
		if err != nil {
			return true
		}
		before := instrCountAll(m)
		if _, err := Optimize(m); err != nil {
			return false
		}
		mid := instrCountAll(m)
		if mid > before {
			return false
		}
		st2, err := Optimize(m)
		if err != nil || st2.Total() != 0 {
			return false
		}
		return ir.Verify(m) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func instrCountAll(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}
