package opt_test

import (
	"math/rand"
	"testing"

	"schematic/internal/bench"
	"schematic/internal/fuzzgen"
	"schematic/internal/ir"
	"schematic/internal/minic"
	"schematic/internal/opt"
)

// TestOptimizeIdempotentProperty generalizes TestOptimizeIdempotent into
// a property over every benchmark and a fuzz corpus: a second Optimize
// run over already-optimized IR must fire zero rewrites and leave the
// module byte-identical. A pass pair that kept undoing each other's work
// would loop forever under the per-pass validator, so idempotence is
// load-bearing for transval, not just hygiene.
func TestOptimizeIdempotentProperty(t *testing.T) {
	checkIdempotent := func(t *testing.T, name string, m *ir.Module) {
		t.Helper()
		if _, err := opt.Optimize(m); err != nil {
			t.Fatalf("%s: first Optimize: %v", name, err)
		}
		settled := m.String()
		st, err := opt.Optimize(m)
		if err != nil {
			t.Fatalf("%s: second Optimize: %v", name, err)
		}
		if st.Total() != 0 {
			t.Fatalf("%s: second Optimize fired %d rewrites: %s", name, st.Total(), st)
		}
		if got := m.String(); got != settled {
			t.Fatalf("%s: second Optimize changed the module\nbefore:\n%s\nafter:\n%s", name, settled, got)
		}
	}

	benches, err := bench.All()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range benches {
		m, err := minic.Compile(b.Name, b.Source)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		checkIdempotent(t, b.Name, m)
	}

	n := 40
	if testing.Short() {
		n = 10
	}
	for i := 0; i < n; i++ {
		seed := int64(300 + i)
		src := fuzzgen.Generate(rand.New(rand.NewSource(seed)), fuzzgen.DefaultOptions())
		m, err := minic.Compile("fuzz", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkIdempotent(t, src, m)
	}
}
