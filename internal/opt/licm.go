package opt

import (
	"sort"

	"schematic/internal/cfg"
	"schematic/internal/ir"
)

// hoistInvariantLoads performs loop-invariant code motion for scalar
// loads: a variable loaded inside a loop but stored nowhere in it is read
// once in the preheader and forwarded to every in-loop use through a fresh
// register. Scalar loads cannot trap, so the hoist is safe even when the
// loop body would not have executed; it only trades one read per
// iteration for one read per loop entry.
//
// A global variable is only hoisted when the loop contains no calls (a
// callee may store any global). Locals are immune: the IR forbids
// recursion, so no callee can name this function's locals.
func hoistInvariantLoads(f *ir.Func, st *Stats) bool {
	dom := cfg.Dominators(f)
	forest := cfg.Loops(f, dom)
	changed := false
	for _, l := range forest.BottomUp() {
		if hoistInLoop(f, l, st) {
			changed = true
		}
	}
	return changed
}

func hoistInLoop(f *ir.Func, l *cfg.Loop, st *Stats) bool {
	pre := preheader(f, l)
	if pre == nil {
		return false
	}

	stored := map[*ir.Var]bool{}
	hasCall := false
	loads := map[*ir.Var][]*ir.Load{}
	for b := range l.Blocks {
		for _, in := range b.Instrs {
			switch x := in.(type) {
			case *ir.Store:
				stored[x.Var] = true
			case *ir.Call:
				hasCall = true
			case *ir.Load:
				if !x.HasIndex && !x.Var.AddrUsed {
					loads[x.Var] = append(loads[x.Var], x)
				}
			}
		}
	}

	var vars []*ir.Var
	for v := range loads {
		if stored[v] {
			continue
		}
		if hasCall && isGlobal(f, v) {
			continue
		}
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Name < vars[j].Name })

	changed := false
	for _, v := range vars {
		rv := f.NewReg()
		// Insert the single load just before the preheader's terminator.
		t := pre.Instrs[len(pre.Instrs)-1]
		pre.Instrs = append(append(pre.Instrs[:len(pre.Instrs)-1:len(pre.Instrs)-1],
			&ir.Load{Dst: rv, Var: v}), t)
		for b := range l.Blocks {
			for i, in := range b.Instrs {
				if ld, ok := in.(*ir.Load); ok && ld.Var == v && !ld.HasIndex {
					b.Instrs[i] = move(ld.Dst, rv)
				}
			}
		}
		st.Hoisted++
		changed = true
	}
	return changed
}

// preheader returns the unique out-of-loop predecessor of the loop header,
// or nil when the loop cannot be safely extended (multiple entries, or the
// entering block lives in an atomic section the hoisted load would join).
func preheader(f *ir.Func, l *cfg.Loop) *ir.Block {
	var pre *ir.Block
	for _, p := range l.Header.Preds() {
		if l.Blocks[p] {
			continue
		}
		if pre != nil {
			return nil
		}
		pre = p
	}
	if pre == nil || pre.Terminator() == nil {
		return nil
	}
	return pre
}

// isGlobal reports whether v is a module-level variable rather than one of
// f's locals.
func isGlobal(f *ir.Func, v *ir.Var) bool {
	for _, lv := range f.Locals {
		if lv == v {
			return false
		}
	}
	return true
}
