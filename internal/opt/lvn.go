package opt

import (
	"schematic/internal/ir"
)

// exprKey identifies a computed value within a block: the operator and the
// value numbers of its operands (commutative operators are normalized).
type exprKey struct {
	op     ir.Op
	va, vb int
}

// numberValues performs local value numbering: within a block, a BinOp
// recomputing an already-available value, or a Const re-materializing an
// already-loaded constant, is replaced by a register move. Register moves
// themselves just share the source's value number, so chains of copies
// do not hide redundancy.
func numberValues(f *ir.Func, st *Stats) bool {
	changed := false
	for _, b := range f.Blocks {
		next := 0
		val := map[ir.Reg]int{}    // register -> value number
		constVN := map[int64]int{} // constant -> value number
		exprVN := map[exprKey]int{}
		holder := map[int]ir.Reg{} // value number -> register still holding it
		num := func(r ir.Reg) int {
			if v, ok := val[r]; ok {
				return v
			}
			next++
			val[r] = next
			return next
		}
		// invalidate drops d as the holder of any value: d is being
		// redefined, but value numbers already copied to other registers
		// stay valid.
		invalidate := func(d ir.Reg) {
			if v, ok := val[d]; ok && holder[v] == d {
				delete(holder, v)
			}
			delete(val, d)
		}

		for i, in := range b.Instrs {
			switch x := in.(type) {
			case *ir.Const:
				// Constants get value numbers (so expressions over equal
				// constants unify) but are never rewritten into moves:
				// rematerializing a constant costs the same cycle as a
				// copy, and rewriting would oscillate with the folder.
				invalidate(x.Dst)
				v, known := constVN[x.Val]
				if !known {
					next++
					v = next
					constVN[x.Val] = v
				}
				if _, ok := holder[v]; !ok {
					holder[v] = x.Dst
				}
				val[x.Dst] = v

			case *ir.BinOp:
				if x.Op == ir.OpOr && x.A == x.B {
					// The move idiom: the destination aliases the source's
					// value; no expression is computed.
					v := num(x.A)
					invalidate(x.Dst)
					val[x.Dst] = v
					if _, ok := holder[v]; !ok {
						holder[v] = x.Dst
					}
					continue
				}
				va := num(x.A)
				vb := 0
				if !x.Op.IsUnary() {
					vb = num(x.B)
				}
				if commutative(x.Op) && va > vb {
					va, vb = vb, va
				}
				key := exprKey{op: x.Op, va: va, vb: vb}
				invalidate(x.Dst)
				v, known := exprVN[key]
				if !known {
					next++
					v = next
					exprVN[key] = v
				}
				if r, ok := holder[v]; ok && r != x.Dst {
					b.Instrs[i] = move(x.Dst, r)
					st.CSE++
					changed = true
				} else {
					holder[v] = x.Dst
				}
				val[x.Dst] = v

			default:
				if d, ok := ir.Def(in); ok {
					invalidate(d)
					next++
					val[d] = next
					holder[next] = d
				}
			}
		}
	}
	return changed
}

// commutative reports whether operand order is irrelevant.
func commutative(op ir.Op) bool {
	switch op {
	case ir.OpAdd, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpEq, ir.OpNe:
		return true
	}
	return false
}
