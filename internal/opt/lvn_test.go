package opt

import (
	"testing"

	"schematic/internal/emulator"
	"schematic/internal/ir"
)

func countOps(m *ir.Module, op ir.Op) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if x, ok := in.(*ir.BinOp); ok && x.Op == op {
					n++
				}
			}
		}
	}
	return n
}

func countLoadsOf(m *ir.Module, name string) (inLoop, total int) {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if ld, ok := in.(*ir.Load); ok && ld.Var.Name == name {
					total++
				}
			}
		}
	}
	return 0, total
}

func TestLocalValueNumbering(t *testing.T) {
	m := compile(t, `
input int x[2];
int g;
int h;
func void main() {
  int a;
  int b;
  a = x[0];
  b = x[1];
  g = a * b + a;
  h = a * b + b;
  print(g);
  print(h);
}
`)
	inputs := map[string][]int64{"x": {7, 9}}
	ref, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	st := optimize(t, m)
	if st.CSE == 0 {
		t.Error("a*b computed twice but CSE found nothing")
	}
	if n := countOps(m, ir.OpMul); n != 1 {
		t.Errorf("%d multiplies survive, want 1:\n%s", n, m.String())
	}
	res, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	sameOutput(t, ref.Output, res.Output)
}

func TestLVNCommutativity(t *testing.T) {
	m := compile(t, `
input int x[2];
int g;
func void main() {
  int a;
  int b;
  a = x[0];
  b = x[1];
  g = a + b;
  g = g * (b + a);
  print(g);
}
`)
	optimize(t, m)
	// a+b and b+a must unify: exactly one add left (the loop counter-free
	// body has no other adds).
	if n := countOps(m, ir.OpAdd); n != 1 {
		t.Errorf("%d adds survive, want 1 (commutative CSE failed):\n%s", n, m.String())
	}
}

func TestLVNDivisionPreservesTrap(t *testing.T) {
	m := compile(t, `
input int x[2];
int g;
func void main() {
  int a;
  int d;
  a = x[0];
  d = x[1];
  g = a / d + a / d;
  print(g);
}
`)
	st := optimize(t, m)
	if st.CSE == 0 {
		t.Error("identical divisions not unified")
	}
	// With a zero divisor the program must still trap.
	if _, err := emulator.Run(m, emulator.Config{
		Model: model, Inputs: map[string][]int64{"x": {5, 0}},
	}); err == nil {
		t.Fatal("division trap lost")
	}
	// With a non-zero divisor the value must be right: 5/2+5/2 = 4.
	res, err := emulator.Run(m, emulator.Config{
		Model: model, Inputs: map[string][]int64{"x": {5, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sameOutput(t, []int64{4}, res.Output)
}

func TestHoistInvariantLoad(t *testing.T) {
	m := compile(t, `
input int data[16];
int scale;
int acc;
func void main() {
  int i;
  scale = 3;
  acc = 0;
  for (i = 0; i < 16; i = i + 1) @max(16) {
    acc = acc + data[i] * scale;
  }
  print(acc);
}
`)
	inputs := map[string][]int64{"data": {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}}
	ref, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	st := optimize(t, m)
	if st.Hoisted == 0 {
		t.Errorf("loop-invariant load of scale not hoisted:\n%s", m.String())
	}
	// Exactly one load of scale must remain, outside the loop.
	if _, total := countLoadsOf(m, "scale"); total > 1 {
		t.Errorf("%d loads of scale survive, want <= 1", total)
	}
	res, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	sameOutput(t, ref.Output, res.Output)
}

func TestNoHoistAcrossStore(t *testing.T) {
	m := compile(t, `
int knob;
int acc;
func void main() {
  int i;
  knob = 1;
  acc = 0;
  for (i = 0; i < 8; i = i + 1) @max(8) {
    acc = acc + knob;
    knob = knob + 1;
  }
  print(acc);
}
`)
	before := run(t, m)
	optimize(t, m)
	sameOutput(t, before, run(t, m))
}

func TestNoGlobalHoistPastCall(t *testing.T) {
	m := compile(t, `
int g;
int acc;

func int bump() {
  g = g + 1;
  return g;
}

func void main() {
  int i;
  g = 0;
  acc = 0;
  for (i = 0; i < 5; i = i + 1) @max(5) {
    acc = acc + bump() + g;
  }
  print(acc);
}
`)
	before := run(t, m)
	optimize(t, m)
	sameOutput(t, before, run(t, m))
}
