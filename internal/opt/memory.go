package opt

import (
	"schematic/internal/ir"
)

// forwardStores performs local store-to-load forwarding and redundant-load
// elimination on scalar variables: within a block, a load that follows a
// store (or an earlier load) of the same variable with no intervening
// clobber is replaced by a register move. Calls clobber everything (the
// callee may write any global); indexed accesses and address-taken
// variables are never tracked. Distinct variables never alias (the IR has
// no pointers, paper III-B1).
func forwardStores(f *ir.Func, st *Stats) bool {
	changed := false
	for _, b := range f.Blocks {
		avail := map[*ir.Var]ir.Reg{} // scalar variable -> register holding its value
		for i, in := range b.Instrs {
			if x, ok := in.(*ir.Load); ok && !x.HasIndex && !x.Var.AddrUsed {
				if r, ok := avail[x.Var]; ok && r != x.Dst {
					in = move(x.Dst, r)
					b.Instrs[i] = in
					st.LoadsForwarded++
					changed = true
				}
			}

			// A register definition invalidates entries relying on it.
			if d, ok := ir.Def(in); ok {
				for v, r := range avail {
					if r == d {
						delete(avail, v)
					}
				}
			}

			switch x := in.(type) {
			case *ir.Store:
				if x.HasIndex || x.Var.AddrUsed {
					delete(avail, x.Var)
				} else {
					avail[x.Var] = x.Src
				}
			case *ir.Load:
				if !x.HasIndex && !x.Var.AddrUsed {
					if _, ok := avail[x.Var]; !ok {
						avail[x.Var] = x.Dst
					}
				}
			case *ir.Call:
				avail = map[*ir.Var]ir.Reg{}
			}
		}
	}
	return changed
}

// eliminateDeadStores removes non-indexed stores to variables that are
// never loaded anywhere in the module. With no pointers and observable
// behaviour limited to the output stream, a never-read variable's value
// cannot matter. Indexed stores stay: their bounds check is the program's
// behaviour.
func eliminateDeadStores(m *ir.Module, st *Stats) bool {
	loaded := map[*ir.Var]bool{}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if ld, ok := in.(*ir.Load); ok {
					loaded[ld.Var] = true
				}
			}
		}
	}
	changed := false
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				if s, ok := in.(*ir.Store); ok && !s.HasIndex && !s.Var.AddrUsed && !loaded[s.Var] {
					st.DeadStores++
					changed = true
					continue
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
	}
	return changed
}
