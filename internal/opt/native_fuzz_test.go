package opt

import (
	"math/rand"
	"testing"

	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/fuzzgen"
	"schematic/internal/ir"
	"schematic/internal/minic"
	"schematic/internal/trace"
)

// FuzzOptimizer is the native fuzzing entry point for the optimizer:
// optimized code must behave exactly like the original on the same
// inputs, never grow, and stay verifiable. Run with
//
//	go test ./internal/opt -fuzz FuzzOptimizer -fuzztime 30s
func FuzzOptimizer(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	m := energy.MSP430FR5969()

	f.Fuzz(func(t *testing.T, seed int64) {
		src := fuzzgen.Generate(rand.New(rand.NewSource(seed)), fuzzgen.DefaultOptions())
		mod, err := minic.Compile("fuzz", src)
		if err != nil {
			t.Fatalf("generator produced uncompilable source: %v\n%s", err, src)
		}
		inputs := trace.RandomInputs(mod, rand.New(rand.NewSource(seed^0x0b7a)))
		ref, refErr := emulator.Run(mod, emulator.Config{Model: m, Inputs: inputs, MaxSteps: 30_000_000})

		om := ir.Clone(mod)
		before := instrCountAll(om)
		if _, err := Optimize(om); err != nil {
			t.Fatalf("Optimize: %v", err)
		}
		if err := ir.Verify(om); err != nil {
			t.Fatalf("optimizer broke the module: %v", err)
		}
		if after := instrCountAll(om); after > before {
			t.Fatalf("optimizer grew the program: %d -> %d", before, after)
		}
		res, optErr := emulator.Run(om, emulator.Config{Model: m, Inputs: inputs, MaxSteps: 30_000_000})
		if (refErr != nil) != (optErr != nil) {
			t.Fatalf("trap behaviour changed: ref=%v opt=%v", refErr, optErr)
		}
		if refErr != nil {
			return
		}
		if res.Verdict != ref.Verdict {
			t.Fatalf("verdict %v vs %v", res.Verdict, ref.Verdict)
		}
		if len(res.Output) != len(ref.Output) {
			t.Fatalf("output length %d vs %d", len(res.Output), len(ref.Output))
		}
		for i := range ref.Output {
			if res.Output[i] != ref.Output[i] {
				t.Fatalf("output[%d] = %d, want %d", i, res.Output[i], ref.Output[i])
			}
		}
		if res.Steps > ref.Steps {
			t.Fatalf("optimized run executes more instructions: %d vs %d", res.Steps, ref.Steps)
		}
	})
}
