// Package opt implements classic scalar and control-flow optimizations on
// the IR. The paper's toolchain runs SCHEMATIC on LLVM IR that has already
// been optimized; MiniC's lowering is deliberately naive, so this package
// is the corresponding substrate: constant folding, algebraic
// simplification, local copy propagation, branch simplification, CFG
// cleanup, and liveness-based dead-code elimination.
//
// Optimization must run before checkpoint placement: the passes treat the
// IR as a plain sequential program and know nothing about enabled
// checkpoint locations, so Optimize rejects instrumented modules. All
// passes preserve the emulator's exact arithmetic (shared via ir.EvalOp),
// including division-by-zero trapping: a BinOp that could trap is never
// folded away or removed.
package opt

import (
	"fmt"

	"schematic/internal/ir"
)

// Stats counts what the optimizer did.
type Stats struct {
	Folded         int // BinOps replaced by constants
	Simplified     int // algebraic identities reduced
	Copies         int // copy uses forwarded
	CSE            int // redundant computations replaced by moves (local value numbering)
	Hoisted        int // loop-invariant loads moved to preheaders
	LoadsForwarded int // loads replaced by register moves
	DeadStores     int // stores to never-read variables removed
	DeadInstrs     int // instructions removed by DCE
	DeadBlocks     int // unreachable blocks removed
	Branches       int // conditional branches turned unconditional
	MergedBlocks   int // straight-line block merges
	Rounds         int // fixpoint rounds across all functions
}

// Total returns the total number of applied rewrites.
func (s *Stats) Total() int {
	return s.Folded + s.Simplified + s.Copies + s.CSE + s.Hoisted +
		s.LoadsForwarded + s.DeadStores + s.DeadInstrs + s.DeadBlocks +
		s.Branches + s.MergedBlocks
}

func (s *Stats) String() string {
	return fmt.Sprintf("folded %d, simplified %d, copies %d, cse %d, hoisted %d, loads fwd %d, dead stores %d, dead instrs %d, dead blocks %d, branches %d, merges %d",
		s.Folded, s.Simplified, s.Copies, s.CSE, s.Hoisted, s.LoadsForwarded,
		s.DeadStores, s.DeadInstrs, s.DeadBlocks, s.Branches, s.MergedBlocks)
}

// maxRounds bounds the per-function fixpoint iteration. Each round either
// strictly shrinks the program or terminates the loop, so this is a
// safety net, not a tuning knob.
const maxRounds = 32

// Optimize runs all passes to a fixpoint on every function and verifies
// the result. It returns an error if the module is already instrumented
// with checkpoints (optimize first, place checkpoints second) or if a pass
// broke structural invariants — the latter is a bug, caught here rather
// than downstream.
func Optimize(m *ir.Module) (*Stats, error) {
	if n := len(ir.Checkpoints(m)); n != 0 {
		return nil, fmt.Errorf("opt: module has %d checkpoints; optimization must run before placement", n)
	}
	st := &Stats{}
	// Dead-store elimination needs whole-module load information, so it
	// runs between per-function fixpoints; a removed store can expose more
	// per-function work (a newly dead address computation, an emptied
	// block), so the whole pipeline repeats until it too is stable.
	for outer := 0; outer < maxRounds; outer++ {
		for _, f := range m.Funcs {
			for round := 0; round < maxRounds; round++ {
				st.Rounds++
				changed := foldConstants(f, st)
				changed = forwardStores(f, st) || changed
				changed = numberValues(f, st) || changed
				changed = propagateCopies(f, st) || changed
				changed = hoistInvariantLoads(f, st) || changed
				changed = simplifyCFG(f, st) || changed
				changed = eliminateDeadCode(f, st) || changed
				if !changed {
					break
				}
			}
		}
		if !eliminateDeadStores(m, st) {
			break
		}
	}
	if err := ir.Verify(m); err != nil {
		return nil, fmt.Errorf("opt: internal: %w", err)
	}
	return st, nil
}

// rewriteUses applies fn to every register read by the instruction,
// in place.
func rewriteUses(in ir.Instr, fn func(ir.Reg) ir.Reg) {
	switch x := in.(type) {
	case *ir.BinOp:
		x.A = fn(x.A)
		if !x.Op.IsUnary() {
			x.B = fn(x.B)
		}
	case *ir.Load:
		if x.HasIndex {
			x.Index = fn(x.Index)
		}
	case *ir.Store:
		if x.HasIndex {
			x.Index = fn(x.Index)
		}
		x.Src = fn(x.Src)
	case *ir.Call:
		for i := range x.Args {
			x.Args[i] = fn(x.Args[i])
		}
	case *ir.Out:
		x.Src = fn(x.Src)
	case *ir.Br:
		x.Cond = fn(x.Cond)
	case *ir.Ret:
		if x.HasSrc {
			x.Src = fn(x.Src)
		}
	}
}

// hasSideEffect reports whether removing the instruction (assuming its
// defined register is dead) could change observable behaviour. Loads are
// effect-free; a BinOp is effect-free unless it can trap.
func hasSideEffect(in ir.Instr) bool {
	switch x := in.(type) {
	case *ir.Const, *ir.Load:
		return false
	case *ir.BinOp:
		// Division and remainder trap on a zero divisor; without knowing
		// the divisor they must stay.
		return x.Op == ir.OpDiv || x.Op == ir.OpRem
	default:
		return true
	}
}
