package opt

import (
	"strings"
	"testing"

	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/minic"
)

var model = energy.MSP430FR5969()

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := minic.Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func optimize(t *testing.T, m *ir.Module) *Stats {
	t.Helper()
	st, err := Optimize(m)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	return st
}

func instrCount(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}

func run(t *testing.T, m *ir.Module) []int64 {
	t.Helper()
	res, err := emulator.Run(m, emulator.Config{Model: model})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Verdict != emulator.Completed {
		t.Fatalf("verdict %v", res.Verdict)
	}
	return res.Output
}

func sameOutput(t *testing.T, a, b []int64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("output %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output[%d]: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestConstantFolding(t *testing.T) {
	m := compile(t, `
int g;
func void main() {
  g = 3 * 4 + 2;
  print(g);
}
`)
	before := run(t, m)
	st := optimize(t, m)
	if st.Folded == 0 {
		t.Error("no constants folded in an all-constant expression")
	}
	sameOutput(t, before, run(t, m))
	// After folding and DCE the body must contain no BinOp at all.
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if _, ok := in.(*ir.BinOp); ok {
					t.Errorf("BinOp survived folding: %v", in)
				}
			}
		}
	}
}

func TestDivByZeroNotFolded(t *testing.T) {
	m := compile(t, `
int g;
func void main() {
  int z;
  z = 0;
  g = 7 / z;
  print(g);
}
`)
	optimize(t, m)
	// The division must survive: its trap is the program's behaviour.
	found := false
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if x, ok := in.(*ir.BinOp); ok && x.Op == ir.OpDiv {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("trapping division was folded away")
	}
	if _, err := emulator.Run(m, emulator.Config{Model: model}); err == nil ||
		!strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("trap lost: %v", err)
	}
}

func TestAlgebraicIdentities(t *testing.T) {
	m := compile(t, `
input int x[2];
int g;
func void main() {
  int v;
  v = x[0];
  g = v * 1 + 0;
  g = g - 0;
  g = g * 0 + v;
  print(g);
}
`)
	inputs := map[string][]int64{"x": {41, 0}}
	refRes, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	st := optimize(t, m)
	if st.Simplified == 0 {
		t.Error("no algebraic identity applied")
	}
	optRes, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	sameOutput(t, refRes.Output, optRes.Output)
}

func TestBranchFolding(t *testing.T) {
	m := compile(t, `
int g;
func void main() {
  if (1 < 2) {
    g = 10;
  } else {
    g = 20;
  }
  print(g);
}
`)
	before := run(t, m)
	st := optimize(t, m)
	if st.Branches == 0 {
		t.Error("constant branch not folded")
	}
	if st.DeadBlocks == 0 {
		t.Error("dead arm not removed")
	}
	sameOutput(t, before, run(t, m))
	// The whole function should collapse to a single block.
	for _, f := range m.Funcs {
		if f.Name == "main" && len(f.Blocks) != 1 {
			t.Errorf("main has %d blocks after optimization, want 1:\n%s", len(f.Blocks), m.String())
		}
	}
}

func TestDeadCodeElimination(t *testing.T) {
	m := compile(t, `
input int x[2];
int g;
func void main() {
  int unused;
  unused = x[0] * 3;
  g = 5;
  print(g);
}
`)
	st := optimize(t, m)
	if st.DeadInstrs == 0 {
		t.Error("dead multiply not removed")
	}
	// The load feeding only dead code must go too (loads are effect-free),
	// but the store to the dead *variable* stays: memory writes are
	// observable by later code in general.
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if x, ok := in.(*ir.BinOp); ok && x.Op == ir.OpMul {
					t.Errorf("dead multiply survived: %v", in)
				}
			}
		}
	}
}

func TestCopyPropagation(t *testing.T) {
	m := compile(t, `
input int x[2];
int g;
func void main() {
  int a;
  int b;
  a = x[0];
  b = a;
  g = b + b;
  print(g);
}
`)
	inputs := map[string][]int64{"x": {21, 0}}
	refRes, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	before := instrCount(m)
	st := optimize(t, m)
	if st.Total() == 0 {
		t.Error("optimizer found nothing in a copy chain")
	}
	if after := instrCount(m); after >= before {
		t.Errorf("instruction count %d -> %d, want a reduction", before, after)
	}
	optRes, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	sameOutput(t, refRes.Output, optRes.Output)
}

func TestLoopStructureSurvives(t *testing.T) {
	m := compile(t, `
input int data[8];
int acc;
func void main() {
  int i;
  acc = 0;
  for (i = 0; i < 8; i = i + 1) @max(8) {
    acc = acc + data[i];
  }
  print(acc);
}
`)
	inputs := map[string][]int64{"data": {1, 2, 3, 4, 5, 6, 7, 8}}
	refRes, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	optimize(t, m)
	// The @max annotation must survive for the placement pass.
	found := false
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if _, ok := in.(*ir.LoopBound); ok {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("LoopBound annotation lost")
	}
	optRes, err := emulator.Run(m, emulator.Config{Model: model, Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	sameOutput(t, refRes.Output, optRes.Output)
}

func TestAtomicBlocksNotMergedAcrossBoundary(t *testing.T) {
	m := compile(t, `
int g;
func void main() {
  g = 1;
  atomic {
    g = g + 1;
    print(g);
  }
  g = g + 1;
  print(g);
}
`)
	before := run(t, m)
	optimize(t, m)
	sameOutput(t, before, run(t, m))
	// Atomic markers must survive exactly: at least one atomic block with
	// the print inside, and the trailing print in a non-atomic block.
	var atomicOut, plainOut bool
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if _, ok := in.(*ir.Out); ok {
					if b.Atomic {
						atomicOut = true
					} else {
						plainOut = true
					}
				}
			}
		}
	}
	if !atomicOut || !plainOut {
		t.Errorf("atomic boundary lost: atomicOut=%v plainOut=%v\n%s", atomicOut, plainOut, m.String())
	}
}

func TestRejectsInstrumentedModule(t *testing.T) {
	m := compile(t, `
int g;
func void main() {
  g = 1;
  print(g);
}
`)
	m.Funcs[0].Entry().Instrs = append([]ir.Instr{&ir.Checkpoint{Kind: ir.CkWait}},
		m.Funcs[0].Entry().Instrs...)
	if _, err := Optimize(m); err == nil {
		t.Fatal("Optimize accepted an instrumented module")
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	m := compile(t, `
input int data[4];
int acc;
func void main() {
  int i;
  acc = 0;
  for (i = 0; i < 4; i = i + 1) @max(4) {
    acc = acc + data[i] * 2 + 0;
  }
  print(acc);
}
`)
	optimize(t, m)
	st2 := optimize(t, m)
	if st2.Total() != 0 {
		t.Errorf("second Optimize still found %d rewrites (%v)", st2.Total(), st2)
	}
}
