package opt

import "schematic/internal/ir"

// Pass is one optimizer rewrite stage, individually runnable so the
// translation validator (internal/transval) can snapshot and check the
// module after every single pass application instead of only after the
// whole fixpoint. Run applies the pass once across the module and reports
// whether anything changed.
type Pass struct {
	Name string
	Run  func(m *ir.Module, st *Stats) bool
}

// perFunc lifts a per-function pass to a module sweep.
func perFunc(fn func(*ir.Func, *Stats) bool) func(*ir.Module, *Stats) bool {
	return func(m *ir.Module, st *Stats) bool {
		changed := false
		for _, f := range m.Funcs {
			changed = fn(f, st) || changed
		}
		return changed
	}
}

// Passes returns the optimizer's stages in the order Optimize applies
// them. Running the list repeatedly until no pass reports a change
// reaches the same kind of fixpoint Optimize does (Optimize nests the
// iteration per function; the flat ordering here trades that for
// per-pass observability).
func Passes() []Pass {
	return []Pass{
		{Name: "constfold", Run: perFunc(foldConstants)},
		{Name: "storefwd", Run: perFunc(forwardStores)},
		{Name: "lvn", Run: perFunc(numberValues)},
		{Name: "copyprop", Run: perFunc(propagateCopies)},
		{Name: "licm", Run: perFunc(hoistInvariantLoads)},
		{Name: "simplifycfg", Run: perFunc(simplifyCFG)},
		{Name: "dce", Run: perFunc(eliminateDeadCode)},
		{Name: "deadstores", Run: eliminateDeadStores},
	}
}

// ruleNames lists every rewrite-rule counter of Stats, in report order.
var ruleNames = []string{
	"folded", "simplified", "copies", "cse", "hoisted", "loads-forwarded",
	"dead-stores", "dead-instrs", "dead-blocks", "branches", "merged-blocks",
}

// RuleNames returns the names of every rewrite-rule counter in Stats —
// the rule universe the coverage accountant reports against.
func RuleNames() []string {
	return append([]string(nil), ruleNames...)
}

// Counters returns the per-rule rewrite counts keyed by RuleNames entry.
func (s *Stats) Counters() map[string]int {
	return map[string]int{
		"folded":          s.Folded,
		"simplified":      s.Simplified,
		"copies":          s.Copies,
		"cse":             s.CSE,
		"hoisted":         s.Hoisted,
		"loads-forwarded": s.LoadsForwarded,
		"dead-stores":     s.DeadStores,
		"dead-instrs":     s.DeadInstrs,
		"dead-blocks":     s.DeadBlocks,
		"branches":        s.Branches,
		"merged-blocks":   s.MergedBlocks,
	}
}

// SabotageDropStore, when set, makes eliminateDeadCode wrongly delete the
// first store it encounters in each function — a deliberately planted
// miscompile the translation-validation tests use to prove the validator
// detects, bisects, and shrinks real optimizer bugs. Never set outside
// tests.
var SabotageDropStore bool
