package opt

import (
	"schematic/internal/ir"
)

// simplifyCFG removes unreachable blocks, threads jumps through empty
// forwarding blocks, and merges straight-line block pairs. The entry block
// is never removed; a block carrying a LoopBound annotation is never
// merged into its predecessor (the annotation must stay at the head of
// its loop header).
func simplifyCFG(f *ir.Func, st *Stats) bool {
	changed := false
	if removeUnreachable(f, st) {
		changed = true
	}
	if threadForwarders(f, st) {
		changed = true
	}
	if mergeStraightLine(f, st) {
		changed = true
	}
	return changed
}

// removeUnreachable drops every block not reachable from the entry.
func removeUnreachable(f *ir.Func, st *Stats) bool {
	reach := map[*ir.Block]bool{}
	var walk func(*ir.Block)
	walk = func(b *ir.Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Succs() {
			walk(s)
		}
	}
	walk(f.Entry())
	if len(reach) == len(f.Blocks) {
		return false
	}
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		} else {
			st.DeadBlocks++
		}
	}
	f.Blocks = kept
	f.Renumber()
	return true
}

// threadForwarders redirects edges around blocks that contain nothing but
// an unconditional jump.
func threadForwarders(f *ir.Func, st *Stats) bool {
	changed := false
	for _, b := range f.Blocks {
		if b == f.Entry() || len(b.Instrs) != 1 {
			continue
		}
		j, ok := b.Instrs[0].(*ir.Jmp)
		if !ok || j.Target == b {
			continue
		}
		redirected := false
		for _, p := range b.Preds() {
			switch t := p.Terminator().(type) {
			case *ir.Jmp:
				t.Target = j.Target
				redirected = true
			case *ir.Br:
				if t.Then == b {
					t.Then = j.Target
					redirected = true
				}
				if t.Else == b {
					t.Else = j.Target
					redirected = true
				}
			}
		}
		if redirected {
			changed = true // b is now unreachable; the next round removes it
		}
	}
	return changed
}

// mergeStraightLine merges b into its unique successor c when c's unique
// predecessor is b: b's trailing jump is replaced by c's body. Atomicity
// must agree (merging would otherwise extend or shrink the protected
// region) and c must not carry a loop annotation.
func mergeStraightLine(f *ir.Func, st *Stats) bool {
	changed := false
	for _, b := range f.Blocks {
		for {
			j, ok := b.Terminator().(*ir.Jmp)
			if !ok {
				break
			}
			c := j.Target
			if c == b || c == f.Entry() || c.Atomic != b.Atomic {
				break
			}
			if preds := c.Preds(); len(preds) != 1 || preds[0] != b {
				break
			}
			if _, bound := c.Instrs[0].(*ir.LoopBound); bound {
				break
			}
			b.Instrs = append(b.Instrs[:len(b.Instrs)-1], c.Instrs...)
			c.Instrs = nil // unreachable; removed below
			st.MergedBlocks++
			changed = true
		}
	}
	if changed {
		kept := f.Blocks[:0]
		for _, b := range f.Blocks {
			if len(b.Instrs) > 0 {
				kept = append(kept, b)
			}
		}
		f.Blocks = kept
		f.Renumber()
	}
	return changed
}
