// Package server is the long-running compile-and-emulate service around
// the SCHEMATIC pipeline: an HTTP JSON API over the compiler
// (internal/minic + placement techniques), the intermittent emulator,
// the translation validator (internal/transval), and the
// crash-consistency hunter (internal/crashtest).
//
// Where the cmd/ one-shot tools rebuild all state per invocation and
// exit, the daemon keeps warm state between queries: requests are
// content-addressed (SHA-256 over a canonical encoding of source +
// options) into a single-flight LRU result cache, so N identical
// concurrent submissions trigger exactly one pipeline run and repeats
// are cache hits. With Config.Store set, successful results also write
// through to a disk-backed content-addressed store, so hits survive
// restarts and replicas sharing one store directory share work; and
// POST /v1/grid expands a benchmark×technique×TBPF matrix into cells
// that reuse the same two cache tiers. Execution goes through a bounded
// worker pool with an admission queue (429 + Retry-After when full),
// per-request deadlines propagated as context.Context, Prometheus
// metrics, and graceful drain (stop accepting, finish every in-flight
// job, flush metrics).
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"schematic/internal/bench"
	"schematic/internal/cli"
)

// Options are the request knobs shared by all four job endpoints. Each
// endpoint reads the fields that apply to it; normalize fills documented
// defaults so the content address is stable across equivalent spellings.
type Options struct {
	// Technique selects the checkpoint-placement pass: schematic (the
	// default), ratchet, mementos, rockclimb, alfred, allnvm, or none
	// (front end only).
	Technique string `json:"technique,omitempty"`

	// TBPF derives the capacitor budget EB from the execution profile
	// (EBForTBPF); EB sets it directly in nJ. When both are zero and a
	// technique needs a budget, TBPF defaults to 10000 cycles — the
	// middle of the paper's evaluation range.
	TBPF int64   `json:"tbpf,omitempty"`
	EB   float64 `json:"eb_nj,omitempty"`

	VMSize      int   `json:"vm_size,omitempty"`      // SVM bytes; default 2048
	ProfileRuns int   `json:"profile_runs,omitempty"` // default 50
	Seed        int64 `json:"seed,omitempty"`         // workload input seed; default 1

	// Optimize runs the optimizer before placement (compile/emulate).
	Optimize bool `json:"optimize,omitempty"`

	// Stream (emulate only) switches the response to an NDJSON event
	// stream (internal/obs records) terminated by a result record.
	// Streaming responses bypass the result cache.
	Stream bool `json:"stream,omitempty"`

	// Observe (emulate only) attaches the live-console instrumentation:
	// the run's events are retained in a ring buffer and fanned out to
	// GET /v1/runs/{digest}/events subscribers, and an attribution
	// collector feeds the per-checkpoint-site energy table on
	// GET /v1/runs/{digest}. Observation runs the emulator with a
	// non-nil observer, so it costs throughput; it is off by default.
	Observe bool `json:"observe,omitempty"`

	// Power (emulate only) selects a power-environment spec in the
	// shared internal/cli grammar — e.g. "solar", "rf:seed=7", "duty",
	// or composed "solar+periodic:cycles=40000". Harvested specs model
	// a capacitor charged by the environment's waveform instead of the
	// built-in exhaustion physics. Specs that read local files
	// (trace:, csv:file=) are rejected: requests must be
	// self-contained. The spec is canonicalized (defaults resolved,
	// members ordered) so equivalent spellings share one digest.
	Power string `json:"power,omitempty"`

	// MaxStates / MaxDepth (verify only) bound the model checker's
	// search: distinct persistent states enqueued (default 200000) and
	// chained injections from the cold root (default 64). A truncated
	// search reports verdict "bounded" instead of "verified".
	MaxStates int `json:"max_states,omitempty"`
	MaxDepth  int `json:"max_depth,omitempty"`

	// TimeoutMS bounds this request's job; capped by the server's
	// configured job timeout, which is also the default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Request is the JSON body of every POST /v1/* endpoint. Source is
// MiniC; alternatively Bench names one of the bundled MiBench2 programs
// (aes, basicmath, bitcount, crc, dijkstra, fft, randmath, rc4).
type Request struct {
	Name    string  `json:"name,omitempty"`
	Source  string  `json:"source,omitempty"`
	Bench   string  `json:"bench,omitempty"`
	Options Options `json:"options"`
}

// normalize resolves a bundled benchmark, fills defaults, and
// canonicalizes the technique spelling, so equivalent requests share one
// content address.
func (r *Request) normalize(kind string) error {
	if r.Bench != "" {
		if r.Source != "" {
			return fmt.Errorf("source and bench are mutually exclusive")
		}
		b, err := bench.ByName(r.Bench)
		if err != nil {
			return err
		}
		r.Source = b.Source
		if r.Name == "" {
			r.Name = b.Name
		}
		r.Bench = ""
	}
	if strings.TrimSpace(r.Source) == "" {
		return fmt.Errorf("empty source")
	}
	if r.Name == "" {
		r.Name = "prog"
	}
	o := &r.Options
	o.Technique = strings.ToLower(strings.TrimSpace(o.Technique))
	if o.Technique == "" {
		o.Technique = "schematic"
	}
	if !knownTechnique(o.Technique) {
		return fmt.Errorf("unknown technique %q", o.Technique)
	}
	if o.VMSize == 0 {
		o.VMSize = 2048
	}
	if o.VMSize < 0 {
		return fmt.Errorf("vm_size must not be negative")
	}
	if o.ProfileRuns <= 0 {
		o.ProfileRuns = 50
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TBPF < 0 || o.EB < 0 || o.TimeoutMS < 0 {
		return fmt.Errorf("tbpf, eb_nj and timeout_ms must not be negative")
	}
	if o.MaxStates < 0 || o.MaxDepth < 0 {
		return fmt.Errorf("max_states and max_depth must not be negative")
	}
	// A placement technique needs a budget; emulation of a placed
	// program needs one too. "none" runs on continuous power unless the
	// request asks otherwise.
	if o.Technique != "none" && o.TBPF == 0 && o.EB == 0 {
		o.TBPF = 10_000
	}
	if o.Power != "" {
		ps, err := cli.ParsePower(o.Power)
		if err != nil {
			return err
		}
		if ps.RequiresFile() {
			return fmt.Errorf("power spec %q reads local files (trace:/csv:); server requests must be self-contained", o.Power)
		}
		o.Power = ps.String()
	}
	if kind != "emulate" {
		o.Stream = false
		o.Observe = false
		o.Power = ""
	}
	// Verify-only knobs must not perturb other endpoints' digests.
	if kind != "verify" {
		o.MaxStates = 0
		o.MaxDepth = 0
	}
	return nil
}

// DigestOf reports the content address a request will be assigned on
// the given endpoint, without submitting it — the digest that keys the
// result cache, the X-Schematic-Digest header, and the run registry
// (GET /v1/runs/{digest}). The request itself is not modified.
func DigestOf(kind string, req Request) (string, error) {
	if err := req.normalize(kind); err != nil {
		return "", err
	}
	return req.digest(kind), nil
}

func knownTechnique(name string) bool {
	switch name {
	case "schematic", "ratchet", "mementos", "rockclimb", "alfred", "allnvm", "none":
		return true
	}
	return false
}

// digest is the request's content address: SHA-256 over the canonical
// JSON encoding of (kind, name, source, normalized options). Two
// requests with the same digest are interchangeable, which is what makes
// single-flight caching sound.
func (r *Request) digest(kind string) string {
	canon := struct {
		Kind    string  `json:"kind"`
		Name    string  `json:"name"`
		Source  string  `json:"source"`
		Options Options `json:"options"`
	}{kind, r.Name, r.Source, r.Options}
	b, _ := json.Marshal(canon) // struct of plain fields: cannot fail
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// EnergyLedger is the nJ breakdown of an emulation (Fig. 6 categories).
type EnergyLedger struct {
	ComputeNJ float64 `json:"compute_nj"`
	SaveNJ    float64 `json:"save_nj"`
	RestoreNJ float64 `json:"restore_nj"`
	ReexecNJ  float64 `json:"reexec_nj"`
	TotalNJ   float64 `json:"total_nj"`
}

// CompileResponse is the body of POST /v1/compile.
type CompileResponse struct {
	Digest      string  `json:"digest"`
	Name        string  `json:"name"`
	Technique   string  `json:"technique"`
	EBnJ        float64 `json:"eb_nj"`
	Optimized   bool    `json:"optimized"`
	Checkpoints int     `json:"checkpoints"`
	IR          string  `json:"ir"`
}

// EmulateResponse is the body of POST /v1/emulate (and the terminal
// "result" record of a streamed run).
type EmulateResponse struct {
	Digest    string `json:"digest"`
	Name      string `json:"name"`
	Technique string `json:"technique"`

	EBnJ      float64 `json:"eb_nj"`
	Power     string  `json:"power,omitempty"` // canonical power-environment spec, if any
	Verdict   string  `json:"verdict"`
	Completed bool    `json:"completed"`
	Output    []int64 `json:"output"`

	Cycles        int64 `json:"cycles"`
	TotalCycles   int64 `json:"total_cycles"`
	Steps         int64 `json:"steps"`
	PowerFailures int   `json:"power_failures"`
	Saves         int   `json:"saves"`
	Restores      int   `json:"restores"`
	Sleeps        int   `json:"sleeps"`
	MaxVMBytes    int   `json:"max_vm_bytes"`

	Energy EnergyLedger `json:"energy"`
}

// ValidateResponse is the body of POST /v1/validate. OK means every
// validated pipeline stage matched the AST reference interpreter.
type ValidateResponse struct {
	Digest  string `json:"digest"`
	Name    string `json:"name"`
	OK      bool   `json:"ok"`
	Skipped string `json:"skipped,omitempty"`
	// On a mismatch: the first offending stage and the two observables.
	Stage  string `json:"stage,omitempty"`
	Want   string `json:"want,omitempty"`
	Got    string `json:"got,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// HuntResponse is the body of POST /v1/hunt. OK means no
// crash-consistency violation was found within the bounds.
type HuntResponse struct {
	Digest    string `json:"digest"`
	Name      string `json:"name"`
	Technique string `json:"technique"`
	OK        bool   `json:"ok"`
	Skipped   string `json:"skipped,omitempty"`
	// On a violation: its classification and the offending schedule.
	Class     string  `json:"class,omitempty"`
	Schedule  string  `json:"schedule,omitempty"`
	Detail    string  `json:"detail,omitempty"`
	FoundBy   string  `json:"found_by,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// VerifyResponse is the body of POST /v1/verify. Verdict "verified"
// means the reachable crash-recovery state space was exhausted with no
// violation; "bounded" means the named bound truncated the search first
// (nothing found, nothing proven); "counterexample" carries the shrunk
// offending schedule. OK is true for verified, bounded, and skipped
// cases — it means "no violation found", mirroring POST /v1/hunt.
type VerifyResponse struct {
	Digest    string `json:"digest"`
	Name      string `json:"name"`
	Technique string `json:"technique"`
	OK        bool   `json:"ok"`
	Skipped   string `json:"skipped,omitempty"`

	Verdict      string `json:"verdict,omitempty"`
	States       int    `json:"states,omitempty"`
	Edges        int64  `json:"edges,omitempty"`
	DedupHits    int64  `json:"dedup_hits,omitempty"`
	MaxDepth     int    `json:"max_depth,omitempty"`
	WaitContract bool   `json:"wait_contract,omitempty"`
	Bound        string `json:"bound,omitempty"`

	// On a counterexample: its classification and the offending schedule.
	Class     string  `json:"class,omitempty"`
	Schedule  string  `json:"schedule,omitempty"`
	Detail    string  `json:"detail,omitempty"`
	FoundBy   string  `json:"found_by,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// RunSummary is one retained emulation in GET /v1/runs. Events,
// EventsRetained, Subscribers and DroppedEvents are zero for
// unobserved runs (options.observe was false).
type RunSummary struct {
	Digest    string `json:"digest"`
	Name      string `json:"name"`
	Technique string `json:"technique"`
	Kind      string `json:"kind,omitempty"` // "emulate" (default) or "verify"
	Status    string `json:"status"`         // "running", "done", "error"
	Observed  bool   `json:"observed"`
	Stream    bool   `json:"stream,omitempty"`

	StartedAt string  `json:"started_at"` // RFC 3339, UTC
	ElapsedMS float64 `json:"elapsed_ms"`

	Events         int64 `json:"events"`          // emitted by the emulator
	EventsRetained int64 `json:"events_retained"` // still replayable from the ring
	Subscribers    int   `json:"subscribers"`     // live SSE readers
	DroppedEvents  int64 `json:"dropped_events"`  // lost to full subscriber queues

	Verdict string `json:"verdict,omitempty"` // when done
	Error   string `json:"error,omitempty"`   // when failed
}

// RunsResponse is the body of GET /v1/runs (newest run first).
type RunsResponse struct {
	Runs []RunSummary `json:"runs"`
}

// SiteEnergy is one checkpoint site's attribution ledger inside a
// RunDetail: what the site spent on saves, restores, and the
// re-execution charged to resumes from it. Site -1 is the synthetic
// boot site (cold restarts, boot-time restores).
type SiteEnergy struct {
	Site       int    `json:"site"`
	Where      string `json:"where"` // "func.block" of first observation
	Fires      int64  `json:"fires"`
	Saves      int64  `json:"saves"`
	Restores   int64  `json:"restores"`
	BytesSaved int64  `json:"bytes_saved"`

	SaveNJ    float64 `json:"save_nj"`
	RestoreNJ float64 `json:"restore_nj"`
	ReexecNJ  float64 `json:"reexec_nj"`
	TotalNJ   float64 `json:"total_nj"`
}

// RunDetail is the body of GET /v1/runs/{digest}. For a running
// observed run, the counters and site table are a live mid-run
// snapshot; Result appears once the run finishes.
type RunDetail struct {
	RunSummary

	PowerFailures int64 `json:"power_failures"`
	Sleeps        int64 `json:"sleeps"`
	PoisonReads   int64 `json:"poison_reads"`

	Sites  []SiteEnergy     `json:"sites,omitempty"`
	Result *EmulateResponse `json:"result,omitempty"`
	Grid   *GridResponse    `json:"grid,omitempty"` // kind "grid", once finished
}

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
