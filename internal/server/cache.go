package server

import (
	"container/list"
	"sync"
)

// CacheStats is a snapshot of the result-cache counters. Hits are
// requests answered from a completed entry, Coalesced are followers that
// attached to an in-flight leader, Misses are leaders that had to run
// the pipeline, Evictions count LRU drops.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
}

// cacheEntry is one content address's slot. The leader closes done once
// val/err are set; followers block on done. Entries evicted while
// in-flight stay valid for their attached waiters — they just stop being
// findable for new requests.
type cacheEntry struct {
	done chan struct{}
	val  any
	err  error
}

func (e *cacheEntry) completed() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// resultCache is the single-flight, content-addressed LRU result cache.
// begin either attaches the caller to an existing entry or makes it the
// leader responsible for computing and completing a fresh one.
type resultCache struct {
	mu      sync.Mutex
	cap     int // max completed+in-flight entries; <=0 means 16
	entries map[string]*cacheEntry
	ll      *list.List // front = most recent; values are digest strings
	pos     map[string]*list.Element
	stats   CacheStats

	// persist, when non-nil, receives every successfully completed
	// cacheable value — the write-through hook to the disk store. It is
	// called by complete, never by completeFromStore (the value came from
	// the store), and never for errors or uncacheable outcomes: what a
	// cancelled or timed-out job produced must not outlive the process,
	// or a restarted daemon would serve it to followers that were
	// promised a retry.
	persist func(digest string, val any)
}

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		capacity = 16
	}
	return &resultCache{
		cap:     capacity,
		entries: make(map[string]*cacheEntry),
		ll:      list.New(),
		pos:     make(map[string]*list.Element),
	}
}

// begin looks up the digest. leader=true means the caller must run the
// job and finish with complete or abandon; leader=false means the entry
// is (or will be) populated by someone else — wait on e.done.
func (c *resultCache) begin(digest string) (e *cacheEntry, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[digest]; ok {
		if e.completed() {
			c.stats.Hits++
		} else {
			c.stats.Coalesced++
		}
		c.touch(digest)
		return e, false
	}
	c.stats.Misses++
	e = &cacheEntry{done: make(chan struct{})}
	c.entries[digest] = e
	c.touch(digest)
	return e, true
}

// complete publishes the leader's result. Uncacheable results (cancelled
// or drained jobs, whose failure says nothing about the request) are
// delivered to the waiters already attached but removed from the index
// so the next identical request recomputes — and are never handed to the
// persist hook, so they cannot resurface from disk across a restart.
func (c *resultCache) complete(digest string, e *cacheEntry, val any, err error, cacheable bool) {
	c.mu.Lock()
	e.val, e.err = val, err
	close(e.done)
	if !cacheable {
		c.removeLocked(digest, e)
	}
	persist := c.persist
	c.mu.Unlock()
	// Disk I/O happens outside the lock; only clean successes go down.
	if persist != nil && cacheable && err == nil && val != nil {
		persist(digest, val)
	}
}

// completeFromStore publishes a value recovered from the second tier.
// It is always cacheable and never re-persisted (the bytes just came
// off disk).
func (c *resultCache) completeFromStore(digest string, e *cacheEntry, val any) {
	c.mu.Lock()
	e.val = val
	close(e.done)
	c.mu.Unlock()
}

// touch marks the digest most-recently-used and evicts past capacity.
// Caller holds c.mu.
func (c *resultCache) touch(digest string) {
	if el, ok := c.pos[digest]; ok {
		c.ll.MoveToFront(el)
	} else {
		c.pos[digest] = c.ll.PushFront(digest)
	}
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		old := back.Value.(string)
		c.ll.Remove(back)
		delete(c.pos, old)
		delete(c.entries, old)
		c.stats.Evictions++
	}
}

// removeLocked drops the digest if it still maps to this entry (it may
// have been evicted, or even replaced after an eviction, in the
// meantime). Caller holds c.mu.
func (c *resultCache) removeLocked(digest string, e *cacheEntry) {
	if cur, ok := c.entries[digest]; !ok || cur != e {
		return
	}
	delete(c.entries, digest)
	if el, ok := c.pos[digest]; ok {
		c.ll.Remove(el)
		delete(c.pos, digest)
	}
}

// Stats snapshots the counters.
func (c *resultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len reports the number of indexed entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
