package server

import (
	_ "embed"
	"net/http"
)

// dashboardHTML is the embedded live console: a single self-contained
// page (no external assets, stdlib-only server side) that lists
// retained runs, follows an in-flight emulation over SSE, renders the
// per-checkpoint-site energy table, and polls /metrics for fleet
// gauges.
//
//go:embed dashboard/index.html
var dashboardHTML []byte

func (s *Server) serveDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("Cache-Control", "no-cache")
	_, _ = w.Write(dashboardHTML)
}
