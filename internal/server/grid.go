package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"schematic/internal/bench"
	"schematic/internal/cli"
)

// POST /v1/grid runs a benchmark × technique × TBPF matrix server-side:
// the request expands into one emulate-kind cell per combination, each
// cell shares the content-addressed result cache and disk store with
// plain POST /v1/emulate (so overlapping grids, repeated grids, and
// grids against a restarted daemon recompute only genuinely new cells),
// and cells schedule through the same bounded worker pool. The grid
// registers in the runs registry (kind=grid) and streams one SSE
// progress event per completed cell on GET /v1/runs/{digest}/events.
//
// The assembled GridResponse itself is intentionally NOT cached or
// persisted: reassembly from per-cell hits is cheap, and the response
// honestly reports where each cell came from on this submission —
// a repeat therefore shows cells_computed == 0 instead of replaying the
// first run's counters.

// GridRequest is the body of POST /v1/grid. Empty axes default to the
// full paper grid: all bundled benchmarks, every placement technique,
// TBPF 10000, and the built-in exhaustion physics (one empty power
// spec). Options apply to every cell and must leave the axis knobs
// (technique, tbpf, eb_nj, power) unset.
type GridRequest struct {
	Benches    []string `json:"benches,omitempty"`
	Techniques []string `json:"techniques,omitempty"`
	TBPFs      []int64  `json:"tbpfs,omitempty"`
	Powers     []string `json:"powers,omitempty"`
	Options    Options  `json:"options"`
}

// GridCellResult is one cell of the assembled table. Source reports how
// this submission resolved the cell: "computed" (ran the pipeline),
// "cache" (completed in-memory entry), "coalesced" (attached to an
// identical in-flight run), or "store" (disk tier).
type GridCellResult struct {
	Bench     string           `json:"bench"`
	Technique string           `json:"technique"`
	TBPF      int64            `json:"tbpf"`
	Power     string           `json:"power,omitempty"`
	Digest    string           `json:"digest"`
	Source    string           `json:"source"`
	Error     string           `json:"error,omitempty"`
	Result    *EmulateResponse `json:"result,omitempty"`
}

// GridResponse is the body of POST /v1/grid: the cell table in
// bench-major, then technique, then TBPF order, plus resolution
// counters for this submission.
type GridResponse struct {
	Digest     string   `json:"digest"`
	Benches    []string `json:"benches"`
	Techniques []string `json:"techniques"`
	TBPFs      []int64  `json:"tbpfs"`
	Powers     []string `json:"powers"`

	Cells []GridCellResult `json:"cells"`

	CellsTotal     int `json:"cells_total"`
	CellsComputed  int `json:"cells_computed"`
	CellsFromCache int `json:"cells_from_cache"`
	CellsFromStore int `json:"cells_from_store"`
	CellsCoalesced int `json:"cells_coalesced"`
	CellErrors     int `json:"cell_errors"`

	ElapsedMS float64 `json:"elapsed_ms"`
}

// gridTechniques is the default technique axis: every placement
// technique (the paper grid), excluding the front-end-only "none".
var gridTechniques = []string{"schematic", "ratchet", "mementos", "rockclimb", "alfred", "allnvm"}

// gridCell is one expanded cell: the normalized emulate request and its
// content address.
type gridCell struct {
	bench     string
	technique string
	tbpf      int64
	power     string
	req       Request
	digest    string
}

// normalizeGrid fills the axis defaults, validates them, and rejects
// per-cell option conflicts. It returns the expanded cells in table
// order and the grid's own digest.
func (s *Server) normalizeGrid(greq *GridRequest) ([]gridCell, string, error) {
	if greq.Options.Technique != "" || greq.Options.TBPF != 0 || greq.Options.EB != 0 || greq.Options.Power != "" {
		return nil, "", fmt.Errorf("options.technique, options.tbpf, options.eb_nj and options.power are grid axes; set benches/techniques/tbpfs/powers instead")
	}
	if greq.Options.Stream {
		return nil, "", fmt.Errorf("options.stream is not supported on grid cells")
	}
	if len(greq.Benches) == 0 {
		greq.Benches = append([]string(nil), bench.Order...)
	}
	if len(greq.Techniques) == 0 {
		greq.Techniques = append([]string(nil), gridTechniques...)
	}
	if len(greq.TBPFs) == 0 {
		greq.TBPFs = []int64{10_000}
	}
	for i, tq := range greq.Techniques {
		tq = strings.ToLower(strings.TrimSpace(tq))
		if !knownTechnique(tq) {
			return nil, "", fmt.Errorf("unknown technique %q", greq.Techniques[i])
		}
		greq.Techniques[i] = tq
	}
	for _, tb := range greq.TBPFs {
		if tb <= 0 {
			return nil, "", fmt.Errorf("tbpfs must be positive, got %d", tb)
		}
	}
	if len(greq.Powers) == 0 {
		greq.Powers = []string{""} // built-in exhaustion physics
	}
	for i, pw := range greq.Powers {
		if strings.TrimSpace(pw) == "" {
			greq.Powers[i] = ""
			continue
		}
		ps, err := cli.ParsePower(pw)
		if err != nil {
			return nil, "", err
		}
		if ps.RequiresFile() {
			return nil, "", fmt.Errorf("power spec %q reads local files (trace:/csv:); server requests must be self-contained", pw)
		}
		greq.Powers[i] = ps.String()
	}
	total := len(greq.Benches) * len(greq.Techniques) * len(greq.TBPFs) * len(greq.Powers)
	if total > s.cfg.GridCellCap {
		return nil, "", fmt.Errorf("grid expands to %d cells, cap is %d", total, s.cfg.GridCellCap)
	}

	cells := make([]gridCell, 0, total)
	for _, b := range greq.Benches {
		for _, tq := range greq.Techniques {
			for _, tb := range greq.TBPFs {
				for _, pw := range greq.Powers {
					req := Request{Bench: b, Options: greq.Options}
					req.Options.Technique = tq
					req.Options.TBPF = tb
					req.Options.Power = pw
					if err := req.normalize("emulate"); err != nil {
						return nil, "", fmt.Errorf("cell %s/%s/%d/%s: %w", b, tq, tb, pw, err)
					}
					cells = append(cells, gridCell{
						bench:     b,
						technique: tq,
						tbpf:      tb,
						power:     pw,
						req:       req,
						digest:    req.digest("emulate"),
					})
				}
			}
		}
	}

	canon := struct {
		Kind       string   `json:"kind"`
		Benches    []string `json:"benches"`
		Techniques []string `json:"techniques"`
		TBPFs      []int64  `json:"tbpfs"`
		Powers     []string `json:"powers"`
		Options    Options  `json:"options"`
	}{"grid", greq.Benches, greq.Techniques, greq.TBPFs, greq.Powers, greq.Options}
	raw, _ := json.Marshal(canon)
	sum := sha256.Sum256(raw)
	return cells, hex.EncodeToString(sum[:]), nil
}

// serveGrid is POST /v1/grid. The handler holds the drain WaitGroup for
// the whole grid, and every cell's job context derives from the server,
// so an admitted grid always runs to completion: a client disconnect
// mid-grid neither kills cells other requests coalesced onto nor leaves
// the table half-assembled, and drain waits for it.
func (s *Server) serveGrid(w http.ResponseWriter, r *http.Request) int {
	if !s.enter() {
		return writeError(w, http.StatusServiceUnavailable, errDraining.Error())
	}
	defer s.wg.Done()

	var greq GridRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	if err := json.NewDecoder(r.Body).Decode(&greq); err != nil {
		return writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
	}
	cells, gridDigest, err := s.normalizeGrid(&greq)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}

	prog := newGridProgress()
	rs := newRunState("grid", gridDigest, fmt.Sprintf("grid[%d]", len(cells)), "")
	rs.prog = prog
	rs = s.runs.register(rs)

	s.gridRuns.Add(1)
	start := time.Now()
	resp := s.runGrid(&greq, cells, gridDigest, prog)
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)

	if rs != nil {
		rs.finishGrid(resp)
	}
	prog.close()
	if s.cfg.Logf != nil {
		s.cfg.Logf("grid %s cells=%d computed=%d cache=%d store=%d coalesced=%d errors=%d",
			short(gridDigest), resp.CellsTotal, resp.CellsComputed, resp.CellsFromCache,
			resp.CellsFromStore, resp.CellsCoalesced, resp.CellErrors)
	}
	return s.respond(w, gridDigest, resp, nil)
}

// runGrid resolves every cell concurrently and assembles the table.
func (s *Server) runGrid(greq *GridRequest, cells []gridCell, gridDigest string, prog *gridProgress) *GridResponse {
	resp := &GridResponse{
		Digest:     gridDigest,
		Benches:    greq.Benches,
		Techniques: greq.Techniques,
		TBPFs:      greq.TBPFs,
		Powers:     greq.Powers,
		Cells:      make([]GridCellResult, len(cells)),
		CellsTotal: len(cells),
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // guards the counters and prog ordering
		done int
	)
	for i := range cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &cells[i]
			s.gridCellsInflight.Add(1)
			val, source, err := s.runCell(&c.req, c.digest)
			s.gridCellsInflight.Add(-1)

			cell := GridCellResult{
				Bench:     c.bench,
				Technique: c.technique,
				TBPF:      c.tbpf,
				Power:     c.power,
				Digest:    c.digest,
				Source:    source,
				Result:    val,
			}
			if err != nil {
				cell.Error = err.Error()
			}
			resp.Cells[i] = cell // distinct index per goroutine; no lock needed

			mu.Lock()
			switch source {
			case "computed":
				resp.CellsComputed++
				s.gridCellComputed.Add(1)
			case "cache":
				resp.CellsFromCache++
				s.gridCellCache.Add(1)
			case "store":
				resp.CellsFromStore++
				s.gridCellStore.Add(1)
			case "coalesced":
				resp.CellsCoalesced++
				s.gridCellCoalesced.Add(1)
			}
			if err != nil {
				resp.CellErrors++
			}
			done++
			ev := gridCellEvent{
				K: "cell", I: i,
				Bench: c.bench, Technique: c.technique, TBPF: c.tbpf, Power: c.power,
				Digest: c.digest, Source: source,
				Done: done, Total: len(cells),
			}
			if val != nil {
				ev.Verdict = val.Verdict
			}
			if err != nil {
				ev.Error = err.Error()
			}
			mu.Unlock()
			prog.append(ev)
		}(i)
	}
	wg.Wait()
	return resp
}

// runCell resolves one cell: cache hit, coalesce onto an identical
// in-flight run, disk-store hit, or compute on a worker slot. Cells
// bypass the admission queue — the grid was admitted as one request —
// but computing cells still respect the worker-pool bound.
func (s *Server) runCell(req *Request, digest string) (*EmulateResponse, string, error) {
	e, leader := s.cache.begin(digest)
	if !leader {
		source := "coalesced"
		if e.completed() {
			source = "cache"
		}
		<-e.done // leaders always complete their entry; cells have no client deadline
		return asEmulate(e.val), source, e.err
	}
	if val, ok := s.storeGet("emulate", digest); ok {
		s.cache.completeFromStore(digest, e, val)
		return asEmulate(val), "store", nil
	}
	s.slots <- struct{}{}
	val, err := s.runJob("emulate", req, digest)
	<-s.slots
	cacheable := err == nil ||
		(!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded))
	s.cache.complete(digest, e, val, err, cacheable)
	return asEmulate(val), "computed", err
}

// asEmulate narrows a cache value; a foreign type (impossible unless a
// digest collides across kinds) reads as a missing result.
func asEmulate(val any) *EmulateResponse {
	r, _ := val.(*EmulateResponse)
	return r
}

// gridCellEvent is the SSE progress record for one completed cell.
type gridCellEvent struct {
	K         string `json:"k"`
	I         int    `json:"i"`
	Bench     string `json:"bench"`
	Technique string `json:"technique"`
	TBPF      int64  `json:"tbpf"`
	Power     string `json:"power,omitempty"`
	Digest    string `json:"digest"`
	Source    string `json:"source"`
	Verdict   string `json:"verdict,omitempty"`
	Error     string `json:"error,omitempty"`
	Done      int    `json:"done"`
	Total     int    `json:"total"`
}

// gridProgress is the grid's append-only progress log: one record per
// completed cell, fully retained (grids are bounded by GridCellCap, so
// no ring is needed), fanned out to SSE subscribers via a broadcast
// wake channel.
type gridProgress struct {
	mu     sync.Mutex
	events [][]byte // marshaled gridCellEvent, index == seq
	wake   chan struct{}
	closed bool
}

func newGridProgress() *gridProgress {
	return &gridProgress{wake: make(chan struct{})}
}

// append records one cell completion and wakes every waiting subscriber.
func (p *gridProgress) append(ev gridCellEvent) {
	data, _ := json.Marshal(ev)
	p.mu.Lock()
	p.events = append(p.events, data)
	close(p.wake)
	p.wake = make(chan struct{})
	p.mu.Unlock()
}

// close marks the log complete and wakes subscribers one last time.
func (p *gridProgress) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.wake)
		p.wake = make(chan struct{})
	}
	p.mu.Unlock()
}

// snapshot returns the records from index start on, whether the log is
// complete, and a channel that closes on the next append or close.
func (p *gridProgress) snapshot(start int) ([][]byte, bool, <-chan struct{}) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if start > len(p.events) {
		start = len(p.events)
	}
	return p.events[start:], p.closed, p.wake
}
