package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// postGrid sends one grid request and returns status, body, and headers.
func postGrid(t *testing.T, ts *httptest.Server, greq GridRequest) (int, []byte, http.Header) {
	t.Helper()
	body, err := json.Marshal(greq)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/grid", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes(), resp.Header
}

// smallGrid is a cheap 1×2×1 matrix used across the grid tests.
func smallGrid() GridRequest {
	return GridRequest{
		Benches:    []string{"crc"},
		Techniques: []string{"schematic", "ratchet"},
		TBPFs:      []int64{500},
		Options:    Options{ProfileRuns: 2},
	}
}

func TestGridEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	code, body, hdr := postGrid(t, ts, smallGrid())
	if code != http.StatusOK {
		t.Fatalf("grid: status %d, body %s", code, body)
	}
	resp := decode[GridResponse](t, body)
	if hdr.Get("X-Schematic-Digest") != resp.Digest || len(resp.Digest) != 64 {
		t.Errorf("digest header %q vs body %q", hdr.Get("X-Schematic-Digest"), resp.Digest)
	}
	if resp.CellsTotal != 2 || len(resp.Cells) != 2 {
		t.Fatalf("cells: total %d, len %d, want 2", resp.CellsTotal, len(resp.Cells))
	}
	if resp.CellsComputed != 2 || resp.CellErrors != 0 {
		t.Fatalf("cold grid: computed %d errors %d, want 2/0", resp.CellsComputed, resp.CellErrors)
	}
	// Table order is bench-major, then technique, then TBPF.
	if resp.Cells[0].Technique != "schematic" || resp.Cells[1].Technique != "ratchet" {
		t.Errorf("cell order: %s, %s", resp.Cells[0].Technique, resp.Cells[1].Technique)
	}
	for i, c := range resp.Cells {
		if c.Bench != "crc" || c.TBPF != 500 || c.Source != "computed" {
			t.Errorf("cell %d: %+v", i, c)
		}
		if c.Result == nil || c.Result.Verdict == "" {
			t.Errorf("cell %d missing result", i)
		}
		if len(c.Digest) != 64 {
			t.Errorf("cell %d digest %q", i, c.Digest)
		}
	}
	if resp.Cells[0].Digest == resp.Cells[1].Digest {
		t.Error("distinct cells share a digest")
	}

	// A repeat reassembles entirely from the in-memory tier and says so.
	code, body, _ = postGrid(t, ts, smallGrid())
	if code != http.StatusOK {
		t.Fatalf("warm grid: status %d, body %s", code, body)
	}
	warm := decode[GridResponse](t, body)
	if warm.CellsComputed != 0 || warm.CellsFromCache != 2 {
		t.Fatalf("warm grid: computed %d cache %d, want 0/2", warm.CellsComputed, warm.CellsFromCache)
	}
	if warm.Digest != resp.Digest {
		t.Error("same matrix, different grid digest")
	}
	if s.gridRuns.Load() != 2 {
		t.Errorf("grid runs counter %d, want 2", s.gridRuns.Load())
	}

	// The grid registered as kind=grid and retains its table.
	rresp, err := ts.Client().Get(ts.URL + "/v1/runs/" + resp.Digest)
	if err != nil {
		t.Fatal(err)
	}
	var dbuf bytes.Buffer
	_, _ = dbuf.ReadFrom(rresp.Body)
	rresp.Body.Close()
	detail := decode[RunDetail](t, dbuf.Bytes())
	if detail.Kind != "grid" || detail.Status != "done" || detail.Grid == nil {
		t.Fatalf("grid run detail: kind=%q status=%q grid=%v", detail.Kind, detail.Status, detail.Grid != nil)
	}
	if detail.Grid.CellsTotal != 2 {
		t.Errorf("retained grid table has %d cells", detail.Grid.CellsTotal)
	}
}

// TestGridCellDedup: overlapping grids share cells — the overlap is
// served from the cache, proven by the per-source counters.
func TestGridCellDedup(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	a := smallGrid() // crc × {schematic, ratchet}
	if code, body, _ := postGrid(t, ts, a); code != http.StatusOK {
		t.Fatalf("grid a: status %d, body %s", code, body)
	}

	b := smallGrid()
	b.Techniques = []string{"ratchet", "mementos"} // overlaps on ratchet
	code, body, _ := postGrid(t, ts, b)
	if code != http.StatusOK {
		t.Fatalf("grid b: status %d, body %s", code, body)
	}
	resp := decode[GridResponse](t, body)
	if resp.CellsFromCache != 1 || resp.CellsComputed != 1 {
		t.Fatalf("overlap grid: cache %d computed %d, want 1/1", resp.CellsFromCache, resp.CellsComputed)
	}
	for _, c := range resp.Cells {
		want := "computed"
		if c.Technique == "ratchet" {
			want = "cache"
		}
		if c.Source != want {
			t.Errorf("cell %s source %q, want %q", c.Technique, c.Source, want)
		}
	}
	if s.gridCellCache.Load() != 1 || s.gridCellComputed.Load() != 3 {
		t.Errorf("cell counters: cache %d computed %d, want 1/3",
			s.gridCellCache.Load(), s.gridCellComputed.Load())
	}

	// A plain POST /v1/emulate of an overlapping cell is also a hit: grid
	// cells and single requests share one content address space.
	req := Request{Bench: "crc", Options: Options{Technique: "ratchet", TBPF: 500, ProfileRuns: 2}}
	hitsBefore := s.CacheStats().Hits
	if code, body, _ := post(t, ts, "emulate", req); code != http.StatusOK {
		t.Fatalf("emulate overlap: status %d, body %s", code, body)
	}
	if s.CacheStats().Hits != hitsBefore+1 {
		t.Error("plain emulate did not hit the grid-filled cache")
	}
}

// TestGridStoreRestartZeroRecompute is the acceptance criterion: a grid
// submitted against a restarted daemon sharing the first daemon's store
// directory recomputes zero cells, proven by the store-hit counters.
func TestGridStoreRestartZeroRecompute(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{Store: openTestStore(t, dir)})
	code, body, _ := postGrid(t, ts1, smallGrid())
	if code != http.StatusOK {
		t.Fatalf("cold grid: status %d, body %s", code, body)
	}
	cold := decode[GridResponse](t, body)
	if cold.CellsComputed != 2 {
		t.Fatalf("cold grid computed %d cells, want 2", cold.CellsComputed)
	}

	s2, ts2 := newTestServer(t, Config{Store: openTestStore(t, dir)})
	var ran atomic.Int64
	s2.gate = func(string) { ran.Add(1) }
	code, body, _ = postGrid(t, ts2, smallGrid())
	if code != http.StatusOK {
		t.Fatalf("restarted grid: status %d, body %s", code, body)
	}
	resp := decode[GridResponse](t, body)
	if resp.CellsComputed != 0 || resp.CellsFromStore != 2 {
		t.Fatalf("restarted grid: computed %d store %d, want 0/2", resp.CellsComputed, resp.CellsFromStore)
	}
	if ran.Load() != 0 {
		t.Fatalf("restarted grid ran %d pipeline jobs, want 0", ran.Load())
	}
	if st := s2.StoreStats(); st.Hits != 2 {
		t.Fatalf("restarted store stats %+v, want 2 hits", st)
	}
	// The cold and warm tables agree cell for cell.
	for i := range cold.Cells {
		c, w := cold.Cells[i], resp.Cells[i]
		if c.Digest != w.Digest || c.Result.Cycles != w.Result.Cycles || c.Result.Verdict != w.Result.Verdict {
			t.Errorf("cell %d diverged across restart: %+v vs %+v", i, c, w)
		}
	}
}

// TestGridSSEProgress: the run's event stream carries exactly one
// "cell" frame per cell, then the terminal grid table.
func TestGridSSEProgress(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	greq := smallGrid()
	cells, gridDigest, err := s.normalizeGrid(&greq)
	if err != nil {
		t.Fatal(err)
	}

	if code, body, _ := postGrid(t, ts, smallGrid()); code != http.StatusOK {
		t.Fatalf("grid: status %d, body %s", code, body)
	}
	status, stream := sseGet(t, ts.URL+"/v1/runs/"+gridDigest+"/events", -1)
	if status != http.StatusOK {
		t.Fatalf("events: status %d", status)
	}
	if got := strings.Count(stream, "event: cell\n"); got != len(cells) {
		t.Errorf("stream carries %d cell events, want %d:\n%s", got, len(cells), stream)
	}
	if !strings.Contains(stream, "event: result") || !strings.Contains(stream, `"cells_total":2`) {
		t.Errorf("stream missing terminal grid record: %q", tail(stream, 300))
	}
	if !strings.Contains(stream, `"done":1,"total":2`) || !strings.Contains(stream, `"done":2,"total":2`) {
		t.Errorf("cell events missing monotonic done counts: %q", stream)
	}

	// Resume past the first cell: exactly one cell frame plus terminal.
	_, resumed := sseGet(t, ts.URL+"/v1/runs/"+gridDigest+"/events", 1)
	if got := strings.Count(resumed, "event: cell\n"); got != 1 {
		t.Errorf("resume from id 1: %d cell events, want 1:\n%s", got, resumed)
	}
}

// TestGridClientDisconnect: the grid's client goes away mid-run; the
// cell a plain request coalesced onto still completes and that follower
// gets its 200. Admitted grids run to completion regardless of the
// submitting client.
func TestGridClientDisconnect(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s.gate = func(string) {
		entered <- struct{}{}
		<-release
	}

	greq := GridRequest{
		Benches:    []string{"crc"},
		Techniques: []string{"schematic"},
		TBPFs:      []int64{500},
		Options:    Options{ProfileRuns: 2},
	}
	body, _ := json.Marshal(greq)
	ctx, cancel := context.WithCancel(context.Background())
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/grid", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	gridErr := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(httpReq)
		if err == nil {
			resp.Body.Close()
		}
		gridErr <- err
	}()
	<-entered // the grid's only cell is now the in-flight leader

	// A plain emulate of the same cell coalesces onto it.
	followerDone := make(chan int, 1)
	go func() {
		code, _, _ := post(t, ts, "emulate",
			Request{Bench: "crc", Options: Options{Technique: "schematic", TBPF: 500, ProfileRuns: 2}})
		followerDone <- code
	}()
	waitFor(t, "follower coalesces", func() bool { return s.CacheStats().Coalesced >= 1 })

	cancel() // the grid's client disconnects mid-run
	if err := <-gridErr; err == nil {
		t.Fatal("cancelled grid request unexpectedly returned a response")
	}
	close(release) // let the cell finish

	if code := <-followerDone; code != http.StatusOK {
		t.Fatalf("coalesced follower: status %d, want 200 despite grid client disconnect", code)
	}
	// The grid itself also ran to completion and retained its table.
	waitFor(t, "grid table retained", func() bool {
		greq := smallGrid()
		greq.Techniques = []string{"schematic"}
		_, digest, err := s.normalizeGrid(&greq)
		if err != nil {
			t.Fatal(err)
		}
		rs := s.runs.lookup(digest)
		if rs == nil {
			return false
		}
		rs.mu.Lock()
		defer rs.mu.Unlock()
		return rs.status == "done" && rs.gridResult != nil && rs.gridResult.CellsComputed == 1
	})
}

// TestGridDrain: BeginDrain mid-grid refuses new grids with 503 but the
// admitted grid finishes with its full table.
func TestGridDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	s.gate = func(string) {
		entered <- struct{}{}
		<-release
	}

	type result struct {
		code int
		body []byte
	}
	done := make(chan result, 1)
	go func() {
		code, body, _ := postGrid(t, ts, smallGrid())
		done <- result{code, body}
	}()
	<-entered // at least one cell is computing

	s.BeginDrain()
	if code, body, _ := postGrid(t, ts, smallGrid()); code != http.StatusServiceUnavailable {
		t.Fatalf("grid during drain: status %d, body %s", code, body)
	}
	close(release)

	r := <-done
	if r.code != http.StatusOK {
		t.Fatalf("admitted grid after drain: status %d, body %s", r.code, r.body)
	}
	resp := decode[GridResponse](t, r.body)
	if resp.CellsTotal != 2 || resp.CellsComputed+resp.CellsFromCache+resp.CellsCoalesced != 2 || resp.CellErrors != 0 {
		t.Fatalf("drained grid table incomplete: %+v", resp)
	}
	ctx, cancelCtx := context.WithTimeout(context.Background(), 20e9)
	defer cancelCtx()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain did not finish with grid done: %v", err)
	}
}

// TestGridValidation covers the 400 paths: axis knobs in options,
// unknown axis values, and the cell cap.
func TestGridValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{GridCellCap: 3})
	cases := []struct {
		name string
		greq GridRequest
	}{
		{"technique in options", GridRequest{Benches: []string{"crc"}, Options: Options{Technique: "schematic"}}},
		{"tbpf in options", GridRequest{Benches: []string{"crc"}, Options: Options{TBPF: 500}}},
		{"eb in options", GridRequest{Benches: []string{"crc"}, Options: Options{EB: 1}}},
		{"stream in options", GridRequest{Benches: []string{"crc"}, Options: Options{Stream: true}}},
		{"unknown bench", GridRequest{Benches: []string{"nope"}, Techniques: []string{"schematic"}, TBPFs: []int64{500}}},
		{"unknown technique", GridRequest{Benches: []string{"crc"}, Techniques: []string{"nope"}, TBPFs: []int64{500}}},
		{"nonpositive tbpf", GridRequest{Benches: []string{"crc"}, Techniques: []string{"schematic"}, TBPFs: []int64{0}}},
		{"cell cap", GridRequest{Benches: []string{"crc"}, Techniques: []string{"schematic", "ratchet"}, TBPFs: []int64{500, 1000}}},
	}
	for _, tc := range cases {
		if code, body, _ := postGrid(t, ts, tc.greq); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, body %s, want 400", tc.name, code, body)
		}
	}
}
