package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"schematic/internal/store"
)

// latencyBuckets are the fixed histogram bounds (seconds) for request
// durations, Prometheus' default spread: 5ms..10s. The implicit +Inf
// bucket is stored as one extra slot past the last bound.
var latencyBuckets = [...]float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// metrics is a hand-rolled Prometheus registry (text exposition format
// 0.0.4) — the stdlib-only stand-in for the client library. It tracks
// per-endpoint request counts and latency histograms plus the
// queue/worker gauges; cache counters are scraped live from the result
// cache, runtime gauges from the server.
type metrics struct {
	mu         sync.Mutex
	requests   map[[2]string]int64 // {endpoint, code} -> count
	durSumS    map[string]float64  // endpoint -> total seconds
	durCount   map[string]int64    // endpoint -> observations
	durBuckets map[string]*[len(latencyBuckets) + 1]int64
	rejected   int64 // 429s issued by admission
}

func newMetrics() *metrics {
	return &metrics{
		requests:   make(map[[2]string]int64),
		durSumS:    make(map[string]float64),
		durCount:   make(map[string]int64),
		durBuckets: make(map[string]*[len(latencyBuckets) + 1]int64),
	}
}

// observe records one finished request on an instrumented endpoint.
func (m *metrics) observe(endpoint string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[[2]string{endpoint, fmt.Sprint(code)}]++
	m.durSumS[endpoint] += seconds
	m.durCount[endpoint]++
	b := m.durBuckets[endpoint]
	if b == nil {
		b = new([len(latencyBuckets) + 1]int64)
		m.durBuckets[endpoint] = b
	}
	slot := len(latencyBuckets) // +Inf
	for i, le := range latencyBuckets {
		if seconds <= le {
			slot = i
			break
		}
	}
	b[slot]++ // stored non-cumulative; write renders cumulative
}

func (m *metrics) reject() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

// snapshot returns copies of the counter maps plus the reject counter.
func (m *metrics) snapshot() (req map[[2]string]int64, sum map[string]float64,
	cnt map[string]int64, buckets map[string][len(latencyBuckets) + 1]int64, rejected int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	req = make(map[[2]string]int64, len(m.requests))
	for k, v := range m.requests {
		req[k] = v
	}
	sum = make(map[string]float64, len(m.durSumS))
	for k, v := range m.durSumS {
		sum[k] = v
	}
	cnt = make(map[string]int64, len(m.durCount))
	for k, v := range m.durCount {
		cnt[k] = v
	}
	buckets = make(map[string][len(latencyBuckets) + 1]int64, len(m.durBuckets))
	for k, v := range m.durBuckets {
		buckets[k] = *v
	}
	return req, sum, cnt, buckets, m.rejected
}

// gauges are the point-in-time values the server hands to write on each
// scrape, alongside the accumulated counters.
type gauges struct {
	queue, inflight int64
	workers         int
	queueCap        int
	draining        bool
	goroutines      int
	sseSubs         int64
	sseDropped      int64
	runs            int
	verifyStates    int64
	verifyDedup     int64
	powerRuns       int64
}

// gridStats are the grid scheduler's counters: accepted grids, resolved
// cells by source, and the in-flight gauge.
type gridStats struct {
	runs           int64
	cellsComputed  int64
	cellsCache     int64
	cellsStore     int64
	cellsCoalesced int64
	cellsInflight  int64
}

// write renders the exposition text. Series are sorted so scrapes are
// deterministic and diffable.
func (m *metrics) write(w io.Writer, cache CacheStats, disk store.Stats, grid gridStats, g gauges) {
	req, sum, cnt, buckets, rejected := m.snapshot()

	fmt.Fprintln(w, "# HELP schematicd_requests_total Finished requests by endpoint and HTTP status.")
	fmt.Fprintln(w, "# TYPE schematicd_requests_total counter")
	keys := make([][2]string, 0, len(req))
	for k := range req {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		fmt.Fprintf(w, "schematicd_requests_total{endpoint=%q,code=%q} %d\n", k[0], k[1], req[k])
	}

	fmt.Fprintln(w, "# HELP schematicd_request_duration_seconds Wall time per request by endpoint.")
	fmt.Fprintln(w, "# TYPE schematicd_request_duration_seconds histogram")
	eps := make([]string, 0, len(cnt))
	for ep := range cnt {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		b := buckets[ep]
		cum := int64(0)
		for i, le := range latencyBuckets {
			cum += b[i]
			fmt.Fprintf(w, "schematicd_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				ep, strconv.FormatFloat(le, 'g', -1, 64), cum)
		}
		cum += b[len(latencyBuckets)]
		fmt.Fprintf(w, "schematicd_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum)
		fmt.Fprintf(w, "schematicd_request_duration_seconds_sum{endpoint=%q} %g\n", ep, sum[ep])
		fmt.Fprintf(w, "schematicd_request_duration_seconds_count{endpoint=%q} %d\n", ep, cnt[ep])
	}

	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("schematicd_queue_depth", "Requests waiting for a worker slot.", g.queue)
	gauge("schematicd_inflight_jobs", "Jobs currently holding a worker slot.", g.inflight)
	gauge("schematicd_workers", "Configured worker-pool size.", int64(g.workers))
	gauge("schematicd_queue_capacity", "Configured admission-queue capacity.", int64(g.queueCap))
	gauge("schematicd_goroutines", "Live goroutines in the daemon process.", int64(g.goroutines))
	gauge("schematicd_sse_subscribers", "Open SSE event-stream connections.", g.sseSubs)
	gauge("schematicd_runs_retained", "Runs held in the retained-run registry.", int64(g.runs))
	counter("schematicd_sse_dropped_events_total", "Events dropped on full subscriber queues (including evicted runs).", g.sseDropped)
	counter("schematicd_queue_rejected_total", "Requests rejected with 429 by admission control.", rejected)
	counter("schematicd_cache_hits_total", "Requests answered from a completed cache entry.", cache.Hits)
	counter("schematicd_cache_misses_total", "Requests that had to run the pipeline.", cache.Misses)
	counter("schematicd_cache_coalesced_total", "Requests coalesced onto an in-flight identical run.", cache.Coalesced)
	counter("schematicd_cache_evictions_total", "Cache entries dropped by the LRU bound.", cache.Evictions)
	counter("schematicd_verify_states_total", "Persistent states explored across POST /v1/verify jobs.", g.verifyStates)
	counter("schematicd_verify_dedup_hits_total", "Hash-dedup hits across POST /v1/verify jobs.", g.verifyDedup)
	counter("schematicd_power_runs_total", "Emulate jobs run under an options.power environment.", g.powerRuns)
	counter("schematicd_store_hits_total", "Results served from the disk store (cross-restart and cross-replica hits).", disk.Hits)
	counter("schematicd_store_misses_total", "Disk-store lookups that found nothing.", disk.Misses)
	counter("schematicd_store_puts_total", "Results written through to the disk store.", disk.Puts)
	counter("schematicd_store_corrupt_total", "Disk-store entries that failed verification and were quarantined.", disk.Corrupt)
	counter("schematicd_store_evictions_total", "Disk-store entries removed by the capacity bound.", disk.Evictions)
	counter("schematicd_grid_runs_total", "POST /v1/grid requests that expanded and ran a cell matrix.", grid.runs)
	fmt.Fprintln(w, "# HELP schematicd_grid_cells_total Grid cells resolved, by how the result was obtained.")
	fmt.Fprintln(w, "# TYPE schematicd_grid_cells_total counter")
	fmt.Fprintf(w, "schematicd_grid_cells_total{source=\"cache\"} %d\n", grid.cellsCache)
	fmt.Fprintf(w, "schematicd_grid_cells_total{source=\"coalesced\"} %d\n", grid.cellsCoalesced)
	fmt.Fprintf(w, "schematicd_grid_cells_total{source=\"computed\"} %d\n", grid.cellsComputed)
	fmt.Fprintf(w, "schematicd_grid_cells_total{source=\"store\"} %d\n", grid.cellsStore)
	gauge("schematicd_grid_cells_inflight", "Grid cells currently being resolved.", grid.cellsInflight)
	d := int64(0)
	if g.draining {
		d = 1
	}
	gauge("schematicd_draining", "1 while the server is draining and refusing new work.", d)
}
