package server

import (
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var (
	reqSeries    = regexp.MustCompile(`^schematicd_requests_total\{endpoint="([^"]+)",code="(\d+)"\} (\d+)$`)
	bucketSeries = regexp.MustCompile(`^schematicd_request_duration_seconds_bucket\{endpoint="([^"]+)",le="([^"]+)"\} (\d+)$`)
	countSeries  = regexp.MustCompile(`^schematicd_request_duration_seconds_count\{endpoint="([^"]+)"\} (\d+)$`)
	plainSeries  = regexp.MustCompile(`^(schematicd_[a-z_]+) (\d+)$`)
)

// TestMetricsHistogramReconciles drives every instrumented endpoint,
// scrapes /metrics, and reconciles the exposition with itself: per
// endpoint, the +Inf histogram bucket, the duration count, and the sum
// of requests_total over status codes must agree; buckets must be
// cumulative; and the new runtime gauges must be present and sane.
func TestMetricsHistogramReconciles(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	code, body, hdr := post(t, ts, "emulate", Request{Name: "sum", Source: sumProg, Options: observedOpts("schematic")})
	if code != http.StatusOK {
		t.Fatalf("emulate: status %d, body %s", code, body)
	}
	digest := hdr.Get("X-Schematic-Digest")
	if code, body, _ := post(t, ts, "compile", Request{Name: "sum", Source: sumProg, Options: fastOpts("ratchet")}); code != http.StatusOK {
		t.Fatalf("compile: status %d, body %s", code, body)
	}
	for _, path := range []string{
		"/v1/runs",
		"/v1/runs/" + digest,
		"/v1/runs/" + digest + "/events",
		"/v1/runs/" + strings.Repeat("0", 64), // a 404 lands in a second code series
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics content type %q", ct)
	}

	reqTotal := map[string]int64{}  // endpoint -> sum over codes
	durCount := map[string]int64{}  // endpoint -> _count
	infBucket := map[string]int64{} // endpoint -> le="+Inf"
	lastBucket := map[string]int64{}
	gauges := map[string]int64{}
	for _, line := range strings.Split(string(raw), "\n") {
		if m := reqSeries.FindStringSubmatch(line); m != nil {
			n, _ := strconv.ParseInt(m[3], 10, 64)
			reqTotal[m[1]] += n
			continue
		}
		if m := bucketSeries.FindStringSubmatch(line); m != nil {
			n, _ := strconv.ParseInt(m[3], 10, 64)
			if n < lastBucket[m[1]] {
				t.Errorf("endpoint %s: bucket le=%s value %d below previous %d — not cumulative",
					m[1], m[2], n, lastBucket[m[1]])
			}
			lastBucket[m[1]] = n
			if m[2] == "+Inf" {
				infBucket[m[1]] = n
			}
			continue
		}
		if m := countSeries.FindStringSubmatch(line); m != nil {
			durCount[m[1]], _ = strconv.ParseInt(m[2], 10, 64)
			continue
		}
		if m := plainSeries.FindStringSubmatch(line); m != nil {
			gauges[m[1]], _ = strconv.ParseInt(m[2], 10, 64)
		}
	}

	for _, ep := range []string{"emulate", "compile", "runs", "run", "events"} {
		if reqTotal[ep] == 0 {
			t.Errorf("endpoint %s: no requests_total series", ep)
		}
	}
	if reqTotal["run"] != 2 { // one 200, one 404
		t.Errorf("run endpoint requests %d, want 2", reqTotal["run"])
	}
	for ep, cnt := range durCount {
		if inf, ok := infBucket[ep]; !ok || inf != cnt {
			t.Errorf("endpoint %s: +Inf bucket %d, duration count %d", ep, infBucket[ep], cnt)
		}
		if reqTotal[ep] != cnt {
			t.Errorf("endpoint %s: requests_total %d, duration count %d", ep, reqTotal[ep], cnt)
		}
	}
	for ep := range reqTotal {
		if _, ok := durCount[ep]; !ok {
			t.Errorf("endpoint %s: requests_total without a histogram", ep)
		}
	}

	if gauges["schematicd_goroutines"] <= 0 {
		t.Error("goroutine gauge missing or zero")
	}
	if gauges["schematicd_runs_retained"] != int64(s.runs.len()) || s.runs.len() < 1 {
		t.Errorf("runs_retained %d, registry %d", gauges["schematicd_runs_retained"], s.runs.len())
	}
	if gauges["schematicd_sse_subscribers"] != 0 {
		t.Errorf("sse_subscribers %d with no open stream", gauges["schematicd_sse_subscribers"])
	}
	if _, ok := gauges["schematicd_sse_dropped_events_total"]; !ok {
		t.Error("sse_dropped_events_total series missing")
	}
}
