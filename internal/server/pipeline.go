package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"schematic/internal/baselines"
	"schematic/internal/bench"
	"schematic/internal/cli"
	"schematic/internal/crashtest"
	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/ir"
	"schematic/internal/minic"
	"schematic/internal/opt"
	"schematic/internal/trace"
	"schematic/internal/transval"
	"schematic/internal/verify"
)

// progError marks faults in the submitted program or options (as
// opposed to server trouble); the handler maps it to 422.
type progError struct{ err error }

func (e *progError) Error() string { return e.err.Error() }
func (e *progError) Unwrap() error { return e.err }

func progErrorf(format string, args ...any) error {
	return &progError{fmt.Errorf(format, args...)}
}

// techniqueFor resolves a normalized technique name to its placement
// pass; "none" resolves to nil (front end only).
func techniqueFor(name string) baselines.Technique {
	if name == "none" {
		return nil
	}
	if name == "allnvm" {
		return bench.AllNVMTechnique()
	}
	for _, t := range bench.Techniques() {
		if strings.EqualFold(t.Name(), name) {
			return t
		}
	}
	return nil // unreachable after normalize
}

// prepared is the shared front half of compile and emulate: the
// (optionally optimized, technique-transformed) module plus the derived
// capacitor budget.
type prepared struct {
	m  *ir.Module
	eb float64
}

// prepare compiles, optimizes, profiles, and applies the placement
// technique, checking ctx between the expensive phases.
func prepare(ctx context.Context, req *Request) (*prepared, error) {
	o := req.Options
	m, err := minic.Compile(req.Name, req.Source)
	if err != nil {
		return nil, &progError{err}
	}
	if o.Optimize {
		if _, err := opt.Optimize(m); err != nil {
			return nil, &progError{err}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tech := techniqueFor(o.Technique)
	if tech == nil {
		return &prepared{m: m, eb: o.EB}, nil
	}
	model := energy.MSP430FR5969()
	prof, err := trace.Collect(m, trace.Options{
		Runs:  o.ProfileRuns,
		Seed:  o.Seed,
		Model: model,
	})
	if err != nil {
		return nil, &progError{err}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	eb := o.EB
	if eb == 0 {
		eb = prof.EBForTBPF(o.TBPF)
	}
	if !tech.SupportsVM(m, o.VMSize) {
		return nil, progErrorf("technique %s does not support vm_size %d for this program", tech.Name(), o.VMSize)
	}
	if err := tech.Apply(m, baselines.Params{
		Model:   model,
		Budget:  eb,
		VMSize:  o.VMSize,
		Profile: prof,
	}); err != nil {
		return nil, &progError{err}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &prepared{m: m, eb: eb}, nil
}

func runCompile(ctx context.Context, req *Request, digest string) (*CompileResponse, error) {
	p, err := prepare(ctx, req)
	if err != nil {
		return nil, err
	}
	return &CompileResponse{
		Digest:      digest,
		Name:        req.Name,
		Technique:   req.Options.Technique,
		EBnJ:        p.eb,
		Optimized:   req.Options.Optimize,
		Checkpoints: crashtest.CountCheckpoints(p.m),
		IR:          p.m.String(),
	}, nil
}

// runEmulate prepares and executes the program on the intermittent
// emulator. A non-nil observer receives the event stream (streaming
// responses); the emulator itself is not interruptible mid-run, so the
// job deadline is enforced between phases and by the step bound.
func runEmulate(ctx context.Context, req *Request, digest string, observer emulator.Observer) (*EmulateResponse, error) {
	o := req.Options
	// Reject an unrunnable emulator configuration before the expensive
	// compile/profile/placement phases — and before a streaming observer
	// sees any events. EB may still be derived from the profile, so the
	// final config is validated again (cheaply) by Run itself.
	if err := (emulator.Config{
		Model: energy.MSP430FR5969(), VMSize: o.VMSize, EB: o.EB,
	}).Validate(); err != nil {
		return nil, &progError{err}
	}
	p, err := prepare(ctx, req)
	if err != nil {
		return nil, err
	}
	var sched emulator.PowerSchedule
	if o.Power != "" {
		spec, err := cli.ParsePower(o.Power)
		if err != nil {
			return nil, &progError{err}
		}
		if p.eb <= 0 {
			return nil, progErrorf("power %q needs an energy-constrained run: set tbpf or eb_nj (technique %q runs on continuous power)", o.Power, o.Technique)
		}
		if sched, err = spec.Build(p.eb); err != nil {
			return nil, &progError{err}
		}
	}
	inputs := trace.RandomInputs(p.m, rand.New(rand.NewSource(o.Seed)))
	res, err := emulator.Run(p.m, emulator.Config{
		Model:        energy.MSP430FR5969(),
		VMSize:       o.VMSize,
		Intermittent: p.eb > 0,
		EB:           p.eb,
		Inputs:       inputs,
		Schedule:     sched,
		Observer:     observer,
	})
	if err != nil {
		return nil, &progError{err}
	}
	return &EmulateResponse{
		Digest:        digest,
		Name:          req.Name,
		Technique:     o.Technique,
		EBnJ:          p.eb,
		Power:         o.Power,
		Verdict:       res.Verdict.String(),
		Completed:     res.Verdict == emulator.Completed,
		Output:        res.Output,
		Cycles:        res.Cycles,
		TotalCycles:   res.TotalCycles,
		Steps:         res.Steps,
		PowerFailures: res.PowerFailures,
		Saves:         res.Saves,
		Restores:      res.Restores,
		Sleeps:        res.Sleeps,
		MaxVMBytes:    res.MaxVMBytes,
		Energy: EnergyLedger{
			ComputeNJ: res.Energy.Computation,
			SaveNJ:    res.Energy.Save,
			RestoreNJ: res.Energy.Restore,
			ReexecNJ:  res.Energy.Reexecution,
			TotalNJ:   res.Energy.Total(),
		},
	}, nil
}

// runValidate checks the request's program through the translation
// validator. Technique "none" validates lowering and the optimizer only;
// any other technique validates that placement stage as well.
func runValidate(ctx context.Context, req *Request, digest string) (*ValidateResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	o := req.Options
	opts := transval.Options{
		TBPF:        o.TBPF,
		ProfileRuns: o.ProfileRuns,
	}
	if tech := techniqueFor(o.Technique); tech != nil {
		opts.Techniques = []string{tech.Name()}
	} else {
		opts.SkipPlacement = true
	}
	f, err := transval.Validate(transval.Case{
		Name:      req.Name,
		Source:    req.Source,
		InputSeed: o.Seed,
	}, opts)
	resp := &ValidateResponse{Digest: digest, Name: req.Name}
	var skip *transval.SkipError
	switch {
	case errors.As(err, &skip):
		resp.OK = true
		resp.Skipped = skip.Reason
	case err != nil:
		return nil, &progError{err}
	case f != nil:
		resp.Stage = f.Stage
		resp.Want = f.Want
		resp.Got = f.Got
		resp.Detail = f.Detail
	default:
		resp.OK = true
	}
	return resp, nil
}

// runHunt runs the crash-consistency hunter on the request's program
// under its technique. The context carries the job deadline; Hunt folds
// it into its wall-clock budget.
func runHunt(ctx context.Context, req *Request, digest string) (*HuntResponse, error) {
	o := req.Options
	tech := techniqueFor(o.Technique)
	if tech == nil {
		return nil, progErrorf("hunt requires a placement technique, not %q", o.Technique)
	}
	start := time.Now()
	f, err := crashtest.Hunt(ctx, crashtest.Case{
		Name:        req.Name,
		Source:      req.Source,
		Technique:   tech.Name(),
		InputSeed:   o.Seed,
		TBPF:        o.TBPF,
		EB:          o.EB,
		ProfileRuns: o.ProfileRuns,
	}, crashtest.Options{})
	resp := &HuntResponse{
		Digest:    digest,
		Name:      req.Name,
		Technique: o.Technique,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	}
	switch {
	case crashtest.IsSkip(err):
		resp.OK = true
		resp.Skipped = err.Error()
	case err != nil:
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, &progError{err}
	case f != nil:
		resp.Class = string(f.Class)
		resp.Schedule = f.Schedule.String()
		resp.Detail = f.Detail
		resp.FoundBy = f.FoundBy
	default:
		resp.OK = true
	}
	return resp, nil
}

// runVerify runs the bounded model checker (internal/verify) on the
// request's program under its technique: every reachable persistent
// state is explored instead of sampled, so an OK response with verdict
// "verified" is a proof over the bounded state space, not an
// unfalsified hunt. The context carries the job deadline; verify folds
// it into its search bound (a mid-search deadline truncates the verdict
// to "bounded" rather than failing the request).
func runVerify(ctx context.Context, req *Request, digest string) (*VerifyResponse, error) {
	o := req.Options
	tech := techniqueFor(o.Technique)
	if tech == nil {
		return nil, progErrorf("verify requires a placement technique, not %q", o.Technique)
	}
	start := time.Now()
	rep, err := verify.Run(ctx, crashtest.Case{
		Name:        req.Name,
		Source:      req.Source,
		Technique:   tech.Name(),
		InputSeed:   o.Seed,
		TBPF:        o.TBPF,
		EB:          o.EB,
		ProfileRuns: o.ProfileRuns,
	}, verify.Options{
		MaxStates: o.MaxStates,
		MaxDepth:  o.MaxDepth,
	})
	resp := &VerifyResponse{
		Digest:    digest,
		Name:      req.Name,
		Technique: o.Technique,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	}
	switch {
	case crashtest.IsSkip(err):
		resp.OK = true
		resp.Skipped = err.Error()
	case err != nil:
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, &progError{err}
	default:
		resp.Verdict = string(rep.Verdict)
		resp.States = rep.States
		resp.Edges = rep.Edges
		resp.DedupHits = rep.DedupHits
		resp.MaxDepth = rep.MaxDepth
		resp.WaitContract = rep.WaitContract
		resp.Bound = rep.Bound
		if f := rep.Finding; f != nil {
			resp.Class = string(f.Class)
			resp.Schedule = f.Schedule.String()
			resp.Detail = f.Detail
			resp.FoundBy = f.FoundBy
		} else {
			resp.OK = true
		}
	}
	return resp, nil
}
