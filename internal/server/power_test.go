package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestEmulatePowerEndpoint: options.power runs the emulation under a
// harvested-energy schedule and reports the canonical spec back. The
// default capacitor sizing (capacity = EB) can only add energy over the
// built-in exhaustion physics, so a workload that completes without a
// power spec completes under solar too.
func TestEmulatePowerEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	opts := fastOpts("schematic")
	opts.Power = "solar:seed=5"
	code, body, _ := post(t, ts, "emulate", Request{Name: "sum", Source: sumProg, Options: opts})
	if code != http.StatusOK {
		t.Fatalf("emulate power: status %d, body %s", code, body)
	}
	r := decode[EmulateResponse](t, body)
	if !r.Completed {
		t.Fatalf("verdict %q, want completed: %+v", r.Verdict, r)
	}
	// The response echoes the canonical spec: defaults resolved.
	if !strings.HasPrefix(r.Power, "solar:seed=5,") || !strings.Contains(r.Power, "peak=") {
		t.Errorf("power %q, want canonical solar spec with resolved defaults", r.Power)
	}
	if got := s.powerRuns.Load(); got != 1 {
		t.Errorf("powerRuns = %d, want 1", got)
	}

	// The counter reaches the exposition endpoint.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	met, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(met), "schematicd_power_runs_total 1") {
		t.Errorf("metrics missing power run counter:\n%s", met)
	}
}

// TestPowerDigestNormalization: equivalent power spellings share one
// content address; non-emulate endpoints ignore the knob entirely.
func TestPowerDigestNormalization(t *testing.T) {
	req := func(power string) Request {
		o := fastOpts("schematic")
		o.Power = power
		return Request{Name: "sum", Source: sumProg, Options: o}
	}
	short, err := DigestOf("emulate", req("solar"))
	if err != nil {
		t.Fatal(err)
	}
	canon, err := DigestOf("emulate", req("solar:seed=1,peak=0.8,period=2000000,day=0.5,cloud=0.4,window=40000,restart=1"))
	if err != nil {
		t.Fatal(err)
	}
	if short != canon {
		t.Errorf("default and spelled-out solar specs digest differently: %s vs %s", short, canon)
	}
	bare, err := DigestOf("emulate", req(""))
	if err != nil {
		t.Fatal(err)
	}
	if bare == short {
		t.Error("power spec did not perturb the emulate digest")
	}
	// Other kinds zero the knob: same digest with and without it.
	h1, err := DigestOf("hunt", req("solar"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := DigestOf("hunt", req(""))
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("options.power perturbed a hunt digest; it is emulate-only")
	}
}

// TestPowerRejections: malformed specs and file-reading specs fail at
// normalization (400); a harvested spec on an unconstrained run is a
// program error (422).
func TestPowerRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		power string
		want  int
	}{
		{"warp:speed=9", http.StatusBadRequest},
		{"trace:run.ndjson", http.StatusBadRequest},
		{"csv:file=prof.csv", http.StatusBadRequest},
	} {
		o := fastOpts("schematic")
		o.Power = tc.power
		code, body, _ := post(t, ts, "emulate", Request{Name: "sum", Source: sumProg, Options: o})
		if code != tc.want {
			t.Errorf("power %q: status %d (body %s), want %d", tc.power, code, body, tc.want)
		}
	}
	// Technique "none" with no budget runs on continuous power — a
	// power environment has nothing to govern there.
	o := Options{Technique: "none", ProfileRuns: 2, Power: "solar"}
	code, body, _ := post(t, ts, "emulate", Request{Name: "sum", Source: sumProg, Options: o})
	if code != http.StatusUnprocessableEntity {
		t.Errorf("power on continuous run: status %d (body %s), want 422", code, body)
	}
}

// TestGridPowersAxis: powers multiplies the grid like any other axis,
// cells carry their spec, and options.power is rejected as a per-cell
// conflict.
func TestGridPowersAxis(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, _ := postGrid(t, ts, GridRequest{
		Benches:    []string{"crc"},
		Techniques: []string{"schematic"},
		TBPFs:      []int64{500},
		Powers:     []string{"", "solar", "rf:seed=3"},
		Options:    Options{ProfileRuns: 2},
	})
	if code != http.StatusOK {
		t.Fatalf("grid powers: status %d, body %s", code, body)
	}
	r := decode[GridResponse](t, body)
	if r.CellsTotal != 3 || len(r.Cells) != 3 {
		t.Fatalf("cells_total %d, want 3: %+v", r.CellsTotal, r)
	}
	if len(r.Powers) != 3 || r.Powers[0] != "" || !strings.HasPrefix(r.Powers[1], "solar:") || !strings.HasPrefix(r.Powers[2], "rf:seed=3,") {
		t.Errorf("powers axis not canonicalized: %q", r.Powers)
	}
	digests := map[string]bool{}
	for i, c := range r.Cells {
		if c.Error != "" {
			t.Errorf("cell %d (%s): %s", i, c.Power, c.Error)
		}
		if c.Power != r.Powers[i] {
			t.Errorf("cell %d power %q, want %q", i, c.Power, r.Powers[i])
		}
		if c.Result == nil || !c.Result.Completed {
			t.Errorf("cell %d did not complete: %+v", i, c.Result)
		}
		digests[c.Digest] = true
	}
	if len(digests) != 3 {
		t.Errorf("power axis cells share digests: %v", digests)
	}

	// options.power is an axis, not a per-cell option.
	code, body, _ = postGrid(t, ts, GridRequest{
		Benches: []string{"crc"}, Techniques: []string{"schematic"}, TBPFs: []int64{500},
		Options: Options{Power: "solar"},
	})
	if code != http.StatusBadRequest || !strings.Contains(string(body), "grid axes") {
		t.Errorf("options.power on grid: status %d, body %s", code, body)
	}

	// File-reading specs are rejected on the axis too.
	code, body, _ = postGrid(t, ts, GridRequest{
		Benches: []string{"crc"}, Techniques: []string{"schematic"}, TBPFs: []int64{500},
		Powers: []string{"trace:run.ndjson"},
	})
	if code != http.StatusBadRequest || !strings.Contains(string(body), "local files") {
		t.Errorf("trace: power axis: status %d, body %s", code, body)
	}
}
