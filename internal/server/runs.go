package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"schematic/internal/emulator"
	"schematic/internal/obs"
)

// runState is one emulation the daemon has run (or is running),
// retained for the live console: status and result for the runs API,
// plus — for observed runs — the event hub feeding SSE subscribers and
// the collector building the per-site energy attribution.
type runState struct {
	digest    string
	name      string
	technique string
	kind      string // "emulate", "verify", or "grid"
	stream    bool
	observed  bool
	started   time.Time

	hub  *obs.Hub       // nil for unobserved runs
	coll *obs.Collector // non-nil iff hub is; read under hub.Sync while live

	prog *gridProgress // non-nil for grid runs: per-cell SSE progress log

	mu         sync.Mutex
	status     string // "running", "done", "error"
	finished   time.Time
	result     *EmulateResponse
	gridResult *GridResponse // terminal grid table (kind "grid")
	verdict    string        // terminal verdict; also covers verify runs (no result)
	errMsg     string
	done       chan struct{} // closed by finish
}

// newRunState builds a registrable running state; callers set the
// kind-specific fields (hub/coll/stream/prog) before registering it.
func newRunState(kind, digest, name, technique string) *runState {
	return &runState{
		digest:    digest,
		name:      name,
		technique: technique,
		kind:      kind,
		started:   time.Now(),
		status:    "running",
		done:      make(chan struct{}),
	}
}

func (rs *runState) finish(resp *EmulateResponse, err error) {
	rs.mu.Lock()
	rs.finished = time.Now()
	if err != nil {
		rs.status = "error"
		rs.errMsg = err.Error()
	} else {
		rs.status = "done"
		rs.result = resp
		rs.verdict = resp.Verdict
	}
	close(rs.done)
	rs.mu.Unlock()
}

// finishVerdict publishes a terminal state with no emulate result — the
// verify path, whose product is a verdict, not an event stream.
func (rs *runState) finishVerdict(verdict string, err error) {
	rs.mu.Lock()
	rs.finished = time.Now()
	if err != nil {
		rs.status = "error"
		rs.errMsg = err.Error()
	} else {
		rs.status = "done"
		rs.verdict = verdict
	}
	close(rs.done)
	rs.mu.Unlock()
}

// finishGrid publishes a grid's terminal state. Grid errors are
// per-cell, inside the response, so the run itself always lands "done";
// the verdict summarizes the cell outcomes.
func (rs *runState) finishGrid(resp *GridResponse) {
	rs.mu.Lock()
	rs.finished = time.Now()
	rs.status = "done"
	rs.gridResult = resp
	if resp.CellErrors > 0 {
		rs.verdict = fmt.Sprintf("%d/%d cells failed", resp.CellErrors, resp.CellsTotal)
	} else {
		rs.verdict = "complete"
	}
	close(rs.done)
	rs.mu.Unlock()
}

func (rs *runState) running() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.status == "running"
}

// snapshot returns the terminal fields; valid once done is closed.
func (rs *runState) snapshot() (status string, result *EmulateResponse, errMsg string) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.status, rs.result, rs.errMsg
}

func (rs *runState) summary() RunSummary {
	rs.mu.Lock()
	s := RunSummary{
		Digest:    rs.digest,
		Name:      rs.name,
		Technique: rs.technique,
		Kind:      rs.kind,
		Status:    rs.status,
		Observed:  rs.observed,
		Stream:    rs.stream,
		StartedAt: rs.started.UTC().Format(time.RFC3339Nano),
	}
	end := rs.finished
	if rs.status == "running" {
		end = time.Now()
	}
	s.ElapsedMS = float64(end.Sub(rs.started)) / float64(time.Millisecond)
	s.Verdict = rs.verdict
	s.Error = rs.errMsg
	rs.mu.Unlock()
	if rs.hub != nil {
		s.Events = rs.hub.Emitted()
		s.EventsRetained = rs.hub.Retained()
		s.Subscribers = rs.hub.Subscribers()
		s.DroppedEvents = rs.hub.Dropped()
	}
	return s
}

// detail extends the summary with the collector's live ledgers. For a
// running observed run the counters and site table are a consistent
// mid-run snapshot (taken under the hub lock, excluding the emulator).
func (rs *runState) detail() RunDetail {
	d := RunDetail{RunSummary: rs.summary()}
	if rs.coll != nil {
		read := func() {
			d.PowerFailures = rs.coll.PowerFailures
			d.Sleeps = rs.coll.Sleeps
			d.PoisonReads = rs.coll.PoisonReads
			for _, st := range rs.coll.Sites() {
				where := st.Func
				if st.Block != "" {
					where += "." + st.Block
				}
				d.Sites = append(d.Sites, SiteEnergy{
					Site:       st.Site,
					Where:      where,
					Fires:      st.Fires,
					Saves:      st.Saves,
					Restores:   st.Restores,
					BytesSaved: st.BytesSaved,
					SaveNJ:     st.SaveEnergy,
					RestoreNJ:  st.RestoreEnergy,
					ReexecNJ:   st.ReexecEnergy,
					TotalNJ:    st.Total(),
				})
			}
		}
		rs.hub.Sync(read)
	}
	_, result, _ := rs.snapshot() // result is nil while still running
	d.Result = result
	rs.mu.Lock()
	d.Grid = rs.gridResult
	rs.mu.Unlock()
	return d
}

// runRegistry retains finished runs (bounded FIFO) plus everything
// in flight, keyed by request digest.
type runRegistry struct {
	mu             sync.Mutex
	cap            int
	runs           map[string]*runState
	order          []*runState // insertion order, for eviction and listing
	droppedEvicted int64       // dropped-event counts of evicted hubs
}

func newRunRegistry(capacity int) *runRegistry {
	return &runRegistry{cap: capacity, runs: make(map[string]*runState)}
}

// register inserts a fresh run built by newRunState. A finished run
// with the same digest is replaced (a re-run supersedes it); if one is
// still running — possible when a streamed request bypasses the cache,
// or for a repeated grid — the new run proceeds unregistered and
// register returns nil.
func (g *runRegistry) register(rs *runState) *runState {
	g.mu.Lock()
	defer g.mu.Unlock()
	if old, ok := g.runs[rs.digest]; ok {
		if old.running() {
			return nil
		}
		g.removeLocked(old)
	}
	g.runs[rs.digest] = rs
	g.order = append(g.order, rs)
	g.evictLocked()
	return rs
}

// removeLocked drops a run from the index and accumulates its drop
// counter so /metrics stays monotonic across evictions.
func (g *runRegistry) removeLocked(rs *runState) {
	delete(g.runs, rs.digest)
	for i, o := range g.order {
		if o == rs {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	if rs.hub != nil {
		g.droppedEvicted += rs.hub.Dropped()
	}
}

// evictLocked enforces the retention bound, oldest finished runs first.
// Running runs are never evicted (their hubs feed live subscribers), so
// the registry can transiently exceed cap by the worker-pool size.
func (g *runRegistry) evictLocked() {
	for len(g.runs) > g.cap {
		evicted := false
		for _, rs := range g.order {
			if !rs.running() {
				g.removeLocked(rs)
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// lookup resolves a full digest or a unique prefix (>= 8 chars).
func (g *runRegistry) lookup(digest string) *runState {
	g.mu.Lock()
	defer g.mu.Unlock()
	if rs, ok := g.runs[digest]; ok {
		return rs
	}
	if len(digest) < 8 {
		return nil
	}
	var found *runState
	for k, rs := range g.runs {
		if strings.HasPrefix(k, digest) {
			if found != nil {
				return nil // ambiguous
			}
			found = rs
		}
	}
	return found
}

// list returns the retained runs, newest first.
func (g *runRegistry) list() []*runState {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*runState, len(g.order))
	for i, rs := range g.order {
		out[len(out)-1-i] = rs
	}
	return out
}

func (g *runRegistry) len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.runs)
}

// droppedTotal is the hub drop count across retained and evicted runs.
func (g *runRegistry) droppedTotal() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	total := g.droppedEvicted
	for _, rs := range g.order {
		if rs.hub != nil {
			total += rs.hub.Dropped()
		}
	}
	return total
}

// runEmulateJob wraps runEmulate with live-console bookkeeping: the run
// is registered before execution, an observed run gets a hub (ring
// retention + SSE fan-out) feeding the attribution collector, and the
// terminal state is published before the hub closes so a subscriber
// that sees the channel close always finds the result.
func (s *Server) runEmulateJob(ctx context.Context, req *Request, digest string, stream emulator.Observer) (*EmulateResponse, error) {
	var (
		hub      *obs.Hub
		coll     *obs.Collector
		observer = stream
	)
	if req.Options.Observe {
		coll = obs.NewCollector()
		hub = obs.NewHub(s.cfg.RunEvents, coll)
		observer = emulator.MultiObserver(hub, stream)
	}
	rs := newRunState("emulate", digest, req.Name, req.Options.Technique)
	rs.stream = stream != nil
	rs.observed = hub != nil
	rs.hub = hub
	rs.coll = coll
	rs = s.runs.register(rs)
	resp, err := runEmulate(ctx, req, digest, observer)
	if rs != nil {
		rs.finish(resp, err)
	}
	if hub != nil {
		hub.Close()
	}
	return resp, err
}

// runVerifyJob wraps runVerify with registry bookkeeping (so long
// model-checking runs are visible in GET /v1/runs while in flight) and
// accumulates the explored-state counters for /metrics.
func (s *Server) runVerifyJob(ctx context.Context, req *Request, digest string) (*VerifyResponse, error) {
	rs := s.runs.register(newRunState("verify", digest, req.Name, req.Options.Technique))
	resp, err := runVerify(ctx, req, digest)
	if rs != nil {
		verdict := ""
		if resp != nil {
			verdict = resp.Verdict
			if verdict == "" && resp.Skipped != "" {
				verdict = "skipped"
			}
		}
		rs.finishVerdict(verdict, err)
	}
	if resp != nil {
		s.verifyStates.Add(int64(resp.States))
		s.verifyDedup.Add(resp.DedupHits)
	}
	return resp, err
}

// serveRuns is GET /v1/runs.
func (s *Server) serveRuns(w http.ResponseWriter, r *http.Request) int {
	resp := RunsResponse{Runs: []RunSummary{}}
	for _, rs := range s.runs.list() {
		resp.Runs = append(resp.Runs, rs.summary())
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
	return http.StatusOK
}

// serveRunDetail is GET /v1/runs/{digest}.
func (s *Server) serveRunDetail(w http.ResponseWriter, r *http.Request) int {
	rs := s.runs.lookup(r.PathValue("digest"))
	if rs == nil {
		return writeError(w, http.StatusNotFound, "unknown run digest")
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Schematic-Digest", rs.digest)
	_ = json.NewEncoder(w).Encode(rs.detail())
	return http.StatusOK
}

// sseWriter renders Server-Sent Events. Write errors are latched; after
// the first one every later write is a no-op (the client is gone — the
// request context will end the handler).
type sseWriter struct {
	w    http.ResponseWriter
	fl   http.Flusher
	last int64 // last event seq written, for gap detection
	err  error
}

func (e *sseWriter) writef(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// event writes one emulator event, preceded by a gap marker when the
// stream jumped (ring eviction before replay, or queue overflow drops).
func (e *sseWriter) event(se obs.SeqEvent) {
	if se.Seq > e.last+1 {
		e.gap(se.Seq - e.last - 1)
	}
	e.last = se.Seq
	data, _ := json.Marshal(seqRecord{I: se.Seq, Record: obs.NewRecord(se.Event)})
	e.writef("id: %d\ndata: %s\n\n", se.Seq, data)
}

// gap tells the client how many events it missed. Gap markers carry no
// id: a client resuming from its last real event id re-learns the gap.
func (e *sseWriter) gap(missed int64) {
	e.writef("event: gap\ndata: {\"k\":\"gap\",\"missed\":%d}\n\n", missed)
}

func (e *sseWriter) comment(text string) {
	e.writef(": %s\n\n", text)
	e.flush()
}

// terminal writes the run's closing record — kind "result" with the
// emulate response, or kind "error" — with id one past the last event
// seq, so a resume from the terminal id replays nothing but it.
func (e *sseWriter) terminal(rs *runState) {
	id := int64(0)
	if rs.hub != nil {
		id = rs.hub.Emitted()
	}
	_, result, errMsg := rs.snapshot()
	var data []byte
	kind := "result"
	if errMsg != "" {
		kind = "error"
		data, _ = json.Marshal(struct {
			I     int64  `json:"i"`
			K     string `json:"k"`
			Error string `json:"error"`
		}{id, "error", errMsg})
	} else {
		data, _ = json.Marshal(struct {
			I      int64            `json:"i"`
			K      string           `json:"k"`
			Result *EmulateResponse `json:"result"`
		}{id, "result", result})
	}
	e.writef("id: %d\nevent: %s\ndata: %s\n\n", id, kind, data)
	e.flush()
}

// gridTerminal writes a grid run's closing record: kind "result" with
// the assembled table, id one past the last cell event.
func (e *sseWriter) gridTerminal(rs *runState, lastID int64) {
	rs.mu.Lock()
	grid, errMsg := rs.gridResult, rs.errMsg
	rs.mu.Unlock()
	id := lastID + 1
	var data []byte
	kind := "result"
	if errMsg != "" {
		kind = "error"
		data, _ = json.Marshal(struct {
			I     int64  `json:"i"`
			K     string `json:"k"`
			Error string `json:"error"`
		}{id, "error", errMsg})
	} else {
		data, _ = json.Marshal(struct {
			I    int64         `json:"i"`
			K    string        `json:"k"`
			Grid *GridResponse `json:"grid"`
		}{id, "result", grid})
	}
	e.writef("id: %d\nevent: %s\ndata: %s\n\n", id, kind, data)
	e.flush()
}

// drain announces server shutdown and ends the stream.
func (e *sseWriter) drain() {
	e.writef("event: drain\ndata: {\"k\":\"drain\"}\n\n")
	e.flush()
}

func (e *sseWriter) flush() {
	if e.err == nil {
		e.fl.Flush()
	}
}

// seqRecord is an obs event record prefixed with its stream position —
// the SSE data payload, and the NDJSON line schemactl tail prints.
type seqRecord struct {
	I int64 `json:"i"`
	obs.Record
}

// lastEventID parses the resume position: the Last-Event-ID header a
// reconnecting EventSource (or schemactl tail) sends, or the ?from=
// query parameter. -1 (the default) streams from the beginning.
func lastEventID(r *http.Request) int64 {
	v := r.Header.Get("Last-Event-ID")
	if v == "" {
		v = r.URL.Query().Get("from")
	}
	if n, err := strconv.ParseInt(v, 10, 64); err == nil && n >= -1 {
		return n
	}
	return -1
}

// serveEvents is GET /v1/runs/{digest}/events: the run's event stream
// as Server-Sent Events. Retained history replays first (honoring
// Last-Event-ID), then live events follow until the run finishes with a
// terminal "result"/"error" record. Heartbeat comments keep idle
// connections alive; the stream tears down cleanly when the client
// disconnects and when the server drains.
func (s *Server) serveEvents(w http.ResponseWriter, r *http.Request) int {
	if !s.enter() {
		return writeError(w, http.StatusServiceUnavailable, errDraining.Error())
	}
	defer s.wg.Done()
	rs := s.runs.lookup(r.PathValue("digest"))
	if rs == nil {
		return writeError(w, http.StatusNotFound, "unknown run digest")
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		return writeError(w, http.StatusInternalServerError, "response writer cannot stream")
	}
	after := lastEventID(r)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream; charset=utf-8")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Schematic-Digest", rs.digest)
	w.WriteHeader(http.StatusOK)
	s.sseSubs.Add(1)
	defer s.sseSubs.Add(-1)

	esw := &sseWriter{w: w, fl: fl, last: after}
	hb := time.NewTicker(s.cfg.SSEHeartbeat)
	defer hb.Stop()

	if rs.prog != nil {
		// Grid run: replay the per-cell progress log (event id N = the
		// Nth completed cell, so Last-Event-ID resumes cleanly), then
		// follow live completions until the grid's terminal record.
		next := int(after) // ids are 1-based; index next == first unseen
		if next < 0 {
			next = 0
		}
		for {
			events, closed, wake := rs.prog.snapshot(next)
			for _, data := range events {
				next++
				esw.writef("id: %d\nevent: cell\ndata: %s\n\n", next, data)
			}
			if len(events) > 0 {
				esw.flush()
			}
			if closed {
				esw.gridTerminal(rs, int64(next))
				return http.StatusOK
			}
			select {
			case <-wake:
			case <-hb.C:
				esw.comment("hb")
			case <-r.Context().Done():
				return http.StatusOK
			case <-s.drainCh:
				esw.drain()
				return http.StatusOK
			}
		}
	}

	if rs.hub == nil {
		// Unobserved run: no event stream, just heartbeats until the
		// terminal record.
		for {
			select {
			case <-rs.done:
				esw.terminal(rs)
				return http.StatusOK
			case <-hb.C:
				esw.comment("hb")
			case <-r.Context().Done():
				return http.StatusOK
			case <-s.drainCh:
				esw.drain()
				return http.StatusOK
			}
		}
	}

	sub := rs.hub.Subscribe(after, s.cfg.SubQueue)
	defer rs.hub.Unsubscribe(sub)
	buf := make([]obs.SeqEvent, 512)
	for {
		// Drain everything pending before flushing, so a hot stream
		// costs one flush per batch, not per event.
		for {
			n, open := sub.Next(buf)
			for i := 0; i < n; i++ {
				esw.event(buf[i])
			}
			if n == len(buf) {
				continue
			}
			esw.flush()
			if !open {
				esw.terminal(rs)
				return http.StatusOK
			}
			break
		}
		select {
		case <-sub.Ready():
		case <-hb.C:
			esw.comment("hb")
		case <-r.Context().Done():
			return http.StatusOK
		case <-s.drainCh:
			esw.drain()
			return http.StatusOK
		}
	}
}
