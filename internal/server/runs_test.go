package server

import (
	"bufio"
	"context"
	"io"
	"math"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"schematic/internal/emulator"
	"schematic/internal/obs"
)

// observedOpts is fastOpts plus the live-console instrumentation.
func observedOpts(technique string) Options {
	o := fastOpts(technique)
	o.Observe = true
	return o
}

// startRun registers a fresh emulate-kind run the way runEmulateJob
// does — the test-side shorthand for newRunState + register.
func startRun(g *runRegistry, digest string, req *Request, hub *obs.Hub, coll *obs.Collector) *runState {
	rs := newRunState("emulate", digest, req.Name, req.Options.Technique)
	rs.observed = hub != nil
	rs.hub = hub
	rs.coll = coll
	return g.register(rs)
}

func TestRunRegistryEviction(t *testing.T) {
	g := newRunRegistry(2)
	req := &Request{Name: "p", Options: Options{Technique: "schematic"}}

	a := startRun(g, "aaaaaaaa11111111", req, nil, nil)
	a.finish(&EmulateResponse{Verdict: "completed"}, nil)
	b := startRun(g, "aaaaaaaa22222222", req, nil, nil)
	b.finish(nil, context.DeadlineExceeded)
	c := startRun(g, "cccccccc33333333", req, nil, nil) // evicts a
	if g.len() != 2 {
		t.Fatalf("len %d after cap-2 overflow, want 2", g.len())
	}
	if g.lookup("aaaaaaaa11111111") != nil {
		t.Error("oldest finished run not evicted")
	}
	if g.lookup("aaaaaaaa22222222") != b || g.lookup("cccccccc33333333") != c {
		t.Error("younger runs evicted")
	}

	// Running runs are never evicted, even past cap.
	d := startRun(g, "dddddddd44444444", req, nil, nil)
	e := startRun(g, "eeeeeeee55555555", req, nil, nil)
	if !c.running() || !d.running() || !e.running() {
		t.Fatal("fixture: expected running runs")
	}
	for _, rs := range []*runState{c, d, e} {
		if g.lookup(rs.digest) != rs {
			t.Errorf("running run %s evicted", rs.digest[:8])
		}
	}

	// Prefix lookup on a roomier registry: unique resolves, ambiguous
	// and short do not.
	p := newRunRegistry(8)
	x := startRun(p, "aaaaaaaa11111111", req, nil, nil)
	startRun(p, "aaaaaaaa22222222", req, nil, nil)
	y := startRun(p, "cccccccc33333333", req, nil, nil)
	if p.lookup("cccccccc") != y {
		t.Error("unique 8-char prefix did not resolve")
	}
	if p.lookup("aaaaaaaa") != nil {
		t.Error("ambiguous prefix resolved")
	}
	if p.lookup("ccc") != nil {
		t.Error("short prefix resolved")
	}

	// A finished run is superseded by a re-run; a running one is not.
	if startRun(p, "aaaaaaaa11111111", req, nil, nil) != nil {
		t.Error("second run registered while first still running")
	}
	x.finish(&EmulateResponse{}, nil)
	if x2 := startRun(p, "aaaaaaaa11111111", req, nil, nil); x2 == nil || p.lookup("aaaaaaaa11111111") != x2 {
		t.Error("finished run not superseded by re-run")
	}
}

func TestRunsAPIAndSiteAttribution(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, hdr := post(t, ts, "emulate", Request{Name: "sum", Source: sumProg, Options: observedOpts("schematic")})
	if code != http.StatusOK {
		t.Fatalf("emulate: status %d, body %s", code, body)
	}
	res := decode[EmulateResponse](t, body)
	digest := hdr.Get("X-Schematic-Digest")
	if digest == "" {
		t.Fatal("no digest header")
	}

	resp, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	listBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	list := decode[RunsResponse](t, listBody)
	if len(list.Runs) != 1 {
		t.Fatalf("runs list: %d entries, want 1", len(list.Runs))
	}
	sum := list.Runs[0]
	if sum.Digest != digest || sum.Status != "done" || !sum.Observed {
		t.Errorf("run summary: %+v", sum)
	}
	if sum.Events == 0 || sum.EventsRetained == 0 {
		t.Errorf("observed run retained no events: %+v", sum)
	}
	if sum.Verdict != res.Verdict {
		t.Errorf("summary verdict %q, result verdict %q", sum.Verdict, res.Verdict)
	}

	// Detail by prefix; per-site energy must reconcile with the ledger.
	resp, err = http.Get(ts.URL + "/v1/runs/" + digest[:12])
	if err != nil {
		t.Fatal(err)
	}
	detailBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run detail by prefix: status %d, body %s", resp.StatusCode, detailBody)
	}
	detail := decode[RunDetail](t, detailBody)
	if detail.Result == nil || detail.Result.Verdict != res.Verdict {
		t.Fatalf("detail result missing or diverged: %+v", detail.Result)
	}
	if len(detail.Sites) == 0 {
		t.Fatal("no checkpoint sites attributed")
	}
	var save, restore, reexec float64
	for _, st := range detail.Sites {
		save += st.SaveNJ
		restore += st.RestoreNJ
		reexec += st.ReexecNJ
		if got := st.SaveNJ + st.RestoreNJ + st.ReexecNJ; math.Abs(got-st.TotalNJ) > 1e-6 {
			t.Errorf("site %d total %v, components sum %v", st.Site, st.TotalNJ, got)
		}
	}
	for _, c := range []struct {
		name       string
		sites, run float64
	}{
		{"save", save, res.Energy.SaveNJ},
		{"restore", restore, res.Energy.RestoreNJ},
		{"reexec", reexec, res.Energy.ReexecNJ},
	} {
		if math.Abs(c.sites-c.run) > 1e-6 {
			t.Errorf("%s energy: sites sum %v, run ledger %v", c.name, c.sites, c.run)
		}
	}
	if int(detail.PowerFailures) != res.PowerFailures {
		t.Errorf("detail power failures %d, result %d", detail.PowerFailures, res.PowerFailures)
	}

	for _, path := range []string{
		"/v1/runs/" + strings.Repeat("0", 64), // unknown
		"/v1/runs/zz",                         // too short for prefix match
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

var idLine = regexp.MustCompile(`^id: (\d+)$`)

// sseGet streams /v1/runs/{digest}/events to completion and returns the
// raw bytes. lastID >= 0 is sent as a Last-Event-ID header.
func sseGet(t *testing.T, url string, lastID int64) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastID >= 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(lastID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestSSEReplayAndByteForByteResume(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, hdr := post(t, ts, "emulate", Request{Name: "sum", Source: sumProg, Options: observedOpts("schematic")})
	if code != http.StatusOK {
		t.Fatalf("emulate: status %d, body %s", code, body)
	}
	digest := hdr.Get("X-Schematic-Digest")
	eventsURL := ts.URL + "/v1/runs/" + digest + "/events"

	status, full := sseGet(t, eventsURL, -1)
	if status != http.StatusOK {
		t.Fatalf("events replay: status %d", status)
	}
	if !strings.Contains(full, "event: result") || !strings.Contains(full, `"verdict"`) {
		t.Fatalf("replay missing terminal result event; tail: %q", tail(full, 200))
	}
	if strings.Contains(full, "event: gap") {
		t.Fatalf("unexpected gap in full-ring replay")
	}

	// Split into SSE frames (each ends with a blank line) and resume from
	// a mid-stream frame's id: the resumed stream must be byte-for-byte
	// the remainder of the full stream.
	frames := strings.SplitAfter(full, "\n\n")
	if frames[len(frames)-1] == "" {
		frames = frames[:len(frames)-1]
	}
	if len(frames) < 10 {
		t.Fatalf("only %d frames — fixture too small", len(frames))
	}
	k := len(frames) / 2
	m := idLine.FindStringSubmatch(strings.SplitN(frames[k], "\n", 2)[0])
	if m == nil {
		t.Fatalf("frame %d has no id line: %q", k, frames[k])
	}
	mid, _ := strconv.ParseInt(m[1], 10, 64)

	status, resumed := sseGet(t, eventsURL, mid)
	if status != http.StatusOK {
		t.Fatalf("resume: status %d", status)
	}
	want := strings.Join(frames[k+1:], "")
	if resumed != want {
		t.Errorf("resume from id %d diverged from the suffix of the full stream:\n got %q\nwant %q",
			mid, tail(resumed, 300), tail(want, 300))
	}

	// ?from= is the header's query-parameter twin (for curl and the
	// dashboard).
	status, fromQ := sseGet(t, eventsURL+"?from="+strconv.FormatInt(mid, 10), -1)
	if status != http.StatusOK || fromQ != want {
		t.Error("?from= resume diverged from Last-Event-ID resume")
	}

	// Resuming from the terminal id replays only the terminal record.
	terminalID := int64(-1)
	for _, fr := range frames {
		if m := idLine.FindStringSubmatch(strings.SplitN(fr, "\n", 2)[0]); m != nil {
			terminalID, _ = strconv.ParseInt(m[1], 10, 64)
		}
	}
	_, onlyTerminal := sseGet(t, eventsURL, terminalID-1)
	if !strings.HasPrefix(onlyTerminal, "id: "+strconv.FormatInt(terminalID, 10)+"\nevent: result\n") {
		t.Errorf("resume at terminal-1: %q", tail(onlyTerminal, 200))
	}
}

func TestSSEGapMarkerOnEvictedPrefix(t *testing.T) {
	_, ts := newTestServer(t, Config{RunEvents: 32})
	code, body, hdr := post(t, ts, "emulate", Request{Name: "sum", Source: sumProg, Options: observedOpts("schematic")})
	if code != http.StatusOK {
		t.Fatalf("emulate: status %d, body %s", code, body)
	}
	status, full := sseGet(t, ts.URL+"/v1/runs/"+hdr.Get("X-Schematic-Digest")+"/events", -1)
	if status != http.StatusOK {
		t.Fatalf("events: status %d", status)
	}
	if !strings.HasPrefix(full, "event: gap\ndata: {\"k\":\"gap\",\"missed\":") {
		t.Fatalf("32-slot ring replay did not open with a gap marker: %q", tail(full, 0)[:min(len(full), 120)])
	}
	if !strings.Contains(full, "event: result") {
		t.Error("gap replay missing terminal result")
	}
}

// TestSSELiveHeartbeatAndResult drives the unobserved-run branch
// deterministically: a hand-registered running run emits only heartbeats
// until it finishes, then the terminal frame.
func TestSSELiveHeartbeatAndResult(t *testing.T) {
	s, ts := newTestServer(t, Config{SSEHeartbeat: 2 * time.Millisecond})
	digest := strings.Repeat("ab", 32)
	rs := startRun(s.runs, digest, &Request{Name: "slow", Options: Options{Technique: "schematic"}}, nil, nil)
	if rs == nil {
		t.Fatal("run not registered")
	}

	resp, err := http.Get(ts.URL + "/v1/runs/" + digest + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("content type %q", ct)
	}
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadString('\n')
	if err != nil || strings.TrimSpace(line) != ": hb" {
		t.Fatalf("first stream line %q (err %v), want heartbeat comment", line, err)
	}
	rs.finish(&EmulateResponse{Digest: digest, Verdict: "completed"}, nil)
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rest), "event: result") || !strings.Contains(string(rest), `"verdict":"completed"`) {
		t.Errorf("stream after finish: %q", tail(string(rest), 300))
	}
}

// TestSSELiveStreamAndDrainTeardown subscribes to an in-flight observed
// run, receives live events, then checks BeginDrain ends the stream with
// a drain frame and Drain completes with the subscriber gone.
func TestSSELiveStreamAndDrainTeardown(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	digest := strings.Repeat("cd", 32)
	hub := obs.NewHub(1024, nil)
	rs := startRun(s.runs, digest, &Request{Name: "live", Options: Options{Technique: "schematic"}}, hub, obs.NewCollector())
	if rs == nil {
		t.Fatal("run not registered")
	}

	resp, err := http.Get(ts.URL + "/v1/runs/" + digest + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	waitFor(t, "subscriber attach", func() bool { return hub.Subscribers() == 1 })

	hub.Event(emulator.Event{Kind: emulator.EvBlockEnter, Cycle: 7})
	br := bufio.NewReader(resp.Body)
	var got strings.Builder
	waitLine := func(want string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			line, err := br.ReadString('\n')
			got.WriteString(line)
			if strings.Contains(line, want) {
				return
			}
			if err != nil || time.Now().After(deadline) {
				t.Fatalf("waiting for %q, got %q (err %v)", want, got.String(), err)
			}
		}
	}
	waitLine(`"cycle":7`)
	if s.sseSubs.Load() != 1 {
		t.Errorf("sse gauge %d with one live stream", s.sseSubs.Load())
	}

	s.BeginDrain()
	waitLine("event: drain")
	if _, err := io.ReadAll(br); err != nil {
		t.Fatalf("stream did not end after drain frame: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain with torn-down SSE stream: %v", err)
	}
	if s.sseSubs.Load() != 0 {
		t.Errorf("sse gauge %d after drain", s.sseSubs.Load())
	}
	hub.Close()
}

// tail returns the last n bytes of s for error messages (0 = all).
func tail(s string, n int) string {
	if n == 0 || len(s) <= n {
		return s
	}
	return "…" + s[len(s)-n:]
}
