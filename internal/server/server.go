package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"schematic/internal/obs"
	"schematic/internal/store"
)

// maxBody bounds request bodies; MiniC sources are small.
const maxBody = 8 << 20

// Config sizes the daemon. Zero values select the documented defaults.
type Config struct {
	// Workers is the job-pool size (0 = NumCPU). At most Workers jobs
	// run concurrently; further leaders wait in the admission queue.
	Workers int
	// QueueCap bounds the admission queue (0 = 64). A leader arriving
	// past the bound is rejected with 429 and a Retry-After header.
	QueueCap int
	// CacheCap bounds the content-addressed result cache (0 = 1024).
	CacheCap int
	// JobTimeout bounds every job (0 = 60s); a request's timeout_ms can
	// only shorten it.
	JobTimeout time.Duration
	// RunsCap bounds the retained-run registry behind GET /v1/runs
	// (0 = 128). Finished runs are evicted oldest-first; running runs
	// are never evicted.
	RunsCap int
	// RunEvents is the per-run event ring capacity for observed runs
	// (0 = obs.DefaultRing). An SSE client resuming from before the
	// oldest retained event gets a gap marker.
	RunEvents int
	// SubQueue bounds each SSE subscriber's event queue (0 = 1024). A
	// subscriber that falls further behind loses events (counted, never
	// blocking the emulator).
	SubQueue int
	// SSEHeartbeat is the idle keep-alive interval on event streams
	// (0 = 15s).
	SSEHeartbeat time.Duration
	// Store, when non-nil, is the disk-backed second tier under the
	// result cache: successful results are written through to it and
	// cache-missing leaders consult it before computing, so results
	// survive restarts and replicas sharing one store directory share
	// work. The caller opens it (and may share one handle across
	// servers in-process).
	Store *store.Store
	// GridCellCap bounds how many cells one POST /v1/grid may expand to
	// (0 = 2048).
	GridCellCap int
	// Logf, when non-nil, receives one line per finished job.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.CacheCap <= 0 {
		c.CacheCap = 1024
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 60 * time.Second
	}
	if c.RunsCap <= 0 {
		c.RunsCap = 128
	}
	if c.RunEvents <= 0 {
		c.RunEvents = obs.DefaultRing
	}
	if c.SubQueue <= 0 {
		c.SubQueue = 1024
	}
	if c.SSEHeartbeat <= 0 {
		c.SSEHeartbeat = 15 * time.Second
	}
	if c.GridCellCap <= 0 {
		c.GridCellCap = 2048
	}
	return c
}

// Server is the schematicd HTTP service: four job endpoints behind
// single-flight content-addressed caching and bounded-queue admission,
// plus health and metrics. Create with New, mount Handler, and call
// Drain on shutdown.
type Server struct {
	cfg   Config
	cache *resultCache
	store *store.Store // disk tier; nil when not configured
	met   *metrics

	slots    chan struct{} // worker-pool semaphore
	queued   atomic.Int64  // leaders waiting for a slot
	inflight atomic.Int64  // jobs holding a slot

	runs    *runRegistry // retained emulations behind GET /v1/runs
	sseSubs atomic.Int64 // live SSE connections (metrics gauge)

	verifyStates atomic.Int64 // persistent states explored across verify jobs
	verifyDedup  atomic.Int64 // dedup hits across verify jobs

	powerRuns atomic.Int64 // emulate jobs run under an options.power environment

	gridRuns          atomic.Int64 // grids accepted (leaders that expanded cells)
	gridCellComputed  atomic.Int64 // cells that ran the pipeline
	gridCellCache     atomic.Int64 // cells answered from a completed cache entry
	gridCellStore     atomic.Int64 // cells answered from the disk tier
	gridCellCoalesced atomic.Int64 // cells coalesced onto in-flight identical runs
	gridCellsInflight atomic.Int64 // cells currently being resolved (gauge)

	mu       sync.Mutex // guards draining and the wg Add/Wait race
	draining bool
	drainCh  chan struct{}  // closed by BeginDrain; tears down SSE streams
	wg       sync.WaitGroup // requests admitted past the draining check

	baseCtx    context.Context // parent of every job; outlives the HTTP request
	baseCancel context.CancelFunc

	// gate, when non-nil, is called by every job after it takes a worker
	// slot and before it runs the pipeline — a package-internal test hook
	// for saturating the pool and observing real (non-coalesced) runs.
	gate func(kind string)
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		cache:      newResultCache(cfg.CacheCap),
		store:      cfg.Store,
		met:        newMetrics(),
		runs:       newRunRegistry(cfg.RunsCap),
		slots:      make(chan struct{}, cfg.Workers),
		drainCh:    make(chan struct{}),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	if s.store != nil {
		s.cache.persist = s.storePut
	}
	return s
}

// Handler mounts the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, kind := range []string{"compile", "emulate", "validate", "hunt", "verify"} {
		kind := kind
		mux.HandleFunc("POST /v1/"+kind, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			code := s.serveJob(kind, w, r)
			s.met.observe(kind, code, time.Since(start).Seconds())
		})
	}
	timed := func(name string, h func(http.ResponseWriter, *http.Request) int) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			code := h(w, r)
			s.met.observe(name, code, time.Since(start).Seconds())
		}
	}
	mux.HandleFunc("POST /v1/grid", timed("grid", s.serveGrid))
	mux.HandleFunc("GET /v1/runs", timed("runs", s.serveRuns))
	mux.HandleFunc("GET /v1/runs/{digest}", timed("run", s.serveRunDetail))
	mux.HandleFunc("GET /v1/runs/{digest}/events", timed("events", s.serveEvents))
	mux.HandleFunc("GET /{$}", s.serveDashboard)
	mux.HandleFunc("GET /healthz", s.serveHealth)
	mux.HandleFunc("GET /metrics", s.serveMetrics)
	return mux
}

// CacheStats snapshots the result-cache counters (also exported on
// /metrics; used directly by tests and schemactl).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// BeginDrain flips the server into draining mode: job endpoints refuse
// new work with 503 while everything already admitted runs to
// completion.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh) // wakes every SSE stream for clean teardown
	}
	s.mu.Unlock()
}

// Drain begins draining and waits until every admitted request has
// finished, or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain: %d request(s) still in flight: %w",
			s.inflight.Load()+s.queued.Load(), ctx.Err())
	}
}

// Close hard-cancels every job's context. Call after Drain fails, never
// instead of it.
func (s *Server) Close() { s.baseCancel() }

// enter admits one request past the draining gate.
func (s *Server) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.wg.Add(1)
	return true
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Admission errors; completed into the cache entry so coalesced
// followers report the same outcome (uncacheable, so the next identical
// request retries).
var (
	errQueueFull = errors.New("job queue is full, retry later")
	errDraining  = errors.New("server is draining")
	errDeadline  = context.DeadlineExceeded
)

// admit takes a worker slot, waiting in the bounded queue if the pool is
// busy. It returns a release func, or a non-zero HTTP status when the
// request cannot be admitted.
func (s *Server) admit(rctx context.Context) (release func(), code int) {
	release = func() { <-s.slots }
	select {
	case s.slots <- struct{}{}:
		return release, 0
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.QueueCap) {
		s.queued.Add(-1)
		s.met.reject()
		return nil, http.StatusTooManyRequests
	}
	defer s.queued.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return release, 0
	case <-rctx.Done():
		return nil, http.StatusGatewayTimeout
	}
}

// serveJob is the common path of the four POST endpoints; it returns the
// HTTP status it wrote, for the metrics ledger.
func (s *Server) serveJob(kind string, w http.ResponseWriter, r *http.Request) int {
	if !s.enter() {
		return writeError(w, http.StatusServiceUnavailable, errDraining.Error())
	}
	defer s.wg.Done()

	var req Request
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
	}
	if err := req.normalize(kind); err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	if req.Options.Stream {
		return s.serveStream(kind, w, r, &req)
	}

	digest := req.digest(kind)
	e, leader := s.cache.begin(digest)
	if !leader {
		select {
		case <-e.done:
		case <-r.Context().Done():
			// The client went away; nobody reads the response body, but
			// the ledger still records the outcome.
			return writeError(w, http.StatusGatewayTimeout, "request cancelled while coalesced")
		}
		return s.respond(w, digest, e.val, e.err)
	}

	// Consult the disk tier before taking a worker slot: a store hit
	// costs a read and a checksum, not a pipeline run.
	if val, ok := s.storeGet(kind, digest); ok {
		s.cache.completeFromStore(digest, e, val)
		return s.respond(w, digest, val, nil)
	}

	release, code := s.admit(r.Context())
	if code != 0 {
		err := errQueueFull
		if code == http.StatusGatewayTimeout {
			err = errDeadline
		}
		// Wake any coalesced followers with the same outcome.
		s.cache.complete(digest, e, nil, err, false)
		return s.respond(w, digest, nil, err)
	}
	val, err := s.runJob(kind, &req, digest)
	release()
	// Cancellation says nothing about the request itself — do not cache.
	cacheable := err == nil ||
		(!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded))
	s.cache.complete(digest, e, val, err, cacheable)
	if s.cfg.Logf != nil {
		s.cfg.Logf("%s %s name=%s err=%v", kind, digest[:12], req.Name, err)
	}
	return s.respond(w, digest, val, err)
}

// runJob executes the pipeline for one leader under the job deadline.
// The job context derives from the server (not the HTTP request): a
// leader's disconnect must not kill the run its followers wait on.
func (s *Server) runJob(kind string, req *Request, digest string) (any, error) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	timeout := s.cfg.JobTimeout
	if t := time.Duration(req.Options.TimeoutMS) * time.Millisecond; t > 0 && t < timeout {
		timeout = t
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()
	if s.gate != nil {
		s.gate(kind)
	}
	switch kind {
	case "compile":
		return valOrNil(runCompile(ctx, req, digest))
	case "emulate":
		if req.Options.Power != "" {
			s.powerRuns.Add(1)
		}
		return valOrNil(s.runEmulateJob(ctx, req, digest, nil))
	case "validate":
		return valOrNil(runValidate(ctx, req, digest))
	case "hunt":
		return valOrNil(runHunt(ctx, req, digest))
	case "verify":
		return valOrNil(s.runVerifyJob(ctx, req, digest))
	}
	return nil, fmt.Errorf("unknown job kind %q", kind)
}

// valOrNil erases the concrete response pointer type so a typed nil
// never lands in the cache as a non-nil any.
func valOrNil[T any](v *T, err error) (any, error) {
	if err != nil {
		return nil, err
	}
	return v, nil
}

// serveStream handles emulate with options.stream: an NDJSON event
// stream terminated by one result (or error) record. Streams go through
// admission but bypass the cache — the byte stream is the product.
func (s *Server) serveStream(kind string, w http.ResponseWriter, r *http.Request, req *Request) int {
	digest := req.digest(kind)
	release, code := s.admit(r.Context())
	if code != 0 {
		err := errQueueFull
		if code == http.StatusGatewayTimeout {
			err = errDeadline
		}
		return s.respond(w, digest, nil, err)
	}
	defer release()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Schematic-Digest", digest)
	w.WriteHeader(http.StatusOK)

	timeout := s.cfg.JobTimeout
	if t := time.Duration(req.Options.TimeoutMS) * time.Millisecond; t > 0 && t < timeout {
		timeout = t
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()
	if s.gate != nil {
		s.gate(kind)
	}
	sw := obs.NewStreamWriter(w)
	resp, err := s.runEmulateJob(ctx, req, digest, sw)
	if ferr := sw.Flush(); ferr != nil && err == nil {
		err = ferr
	}
	enc := json.NewEncoder(w)
	if err != nil {
		_ = enc.Encode(struct {
			Kind  string `json:"kind"`
			Error string `json:"error"`
		}{"error", err.Error()})
	} else {
		_ = enc.Encode(struct {
			Kind   string           `json:"kind"`
			Result *EmulateResponse `json:"result"`
		}{"result", resp})
	}
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	return http.StatusOK
}

// statusOf maps a job error to its HTTP status.
func statusOf(err error) int {
	var pe *progError
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, errQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.As(err, &pe):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

// respond writes the JSON result (or error) and returns the status.
func (s *Server) respond(w http.ResponseWriter, digest string, val any, err error) int {
	code := statusOf(err)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Schematic-Digest", digest)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(code)
	if err != nil {
		_ = json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error()})
	} else {
		_ = json.NewEncoder(w).Encode(val)
	}
	return code
}

// writeError writes a bare JSON error and returns the status.
func writeError(w http.ResponseWriter, code int, msg string) int {
	w.Header().Set("Content-Type", "application/json")
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: msg})
	return code
}

// Health is the GET /healthz body.
type Health struct {
	Status       string `json:"status"` // "ok" or "draining"
	Workers      int    `json:"workers"`
	Inflight     int64  `json:"inflight"`
	QueueDepth   int64  `json:"queue_depth"`
	CacheEntries int    `json:"cache_entries"`
}

func (s *Server) serveHealth(w http.ResponseWriter, r *http.Request) {
	h := Health{
		Status:       "ok",
		Workers:      s.cfg.Workers,
		Inflight:     s.inflight.Load(),
		QueueDepth:   s.queued.Load(),
		CacheEntries: s.cache.Len(),
	}
	if s.isDraining() {
		h.Status = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(h)
}

func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.write(w, s.cache.Stats(), s.StoreStats(), gridStats{
		runs:           s.gridRuns.Load(),
		cellsComputed:  s.gridCellComputed.Load(),
		cellsCache:     s.gridCellCache.Load(),
		cellsStore:     s.gridCellStore.Load(),
		cellsCoalesced: s.gridCellCoalesced.Load(),
		cellsInflight:  s.gridCellsInflight.Load(),
	}, gauges{
		queue:        s.queued.Load(),
		inflight:     s.inflight.Load(),
		workers:      s.cfg.Workers,
		queueCap:     s.cfg.QueueCap,
		draining:     s.isDraining(),
		goroutines:   runtime.NumGoroutine(),
		sseSubs:      s.sseSubs.Load(),
		sseDropped:   s.runs.droppedTotal(),
		runs:         s.runs.len(),
		verifyStates: s.verifyStates.Load(),
		verifyDedup:  s.verifyDedup.Load(),
		powerRuns:    s.powerRuns.Load(),
	})
}
