package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"schematic/internal/emulator"
)

// sumProg is a tiny MiniC workload: fast under every endpoint yet large
// enough for placement to have something to do.
const sumProg = `
input int x[8];
int acc;
func void main() {
  int i;
  acc = 0;
  for (i = 0; i < 8; i = i + 1) @max(8) {
    acc = (acc + x[i]) & 0xFFFF;
  }
  print(acc);
}
`

// fastOpts keeps profiling cheap in tests.
func fastOpts(technique string) Options {
	return Options{Technique: technique, TBPF: 500, ProfileRuns: 2}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain on cleanup: %v", err)
		}
		s.Close()
	})
	return s, ts
}

// post sends one job request and returns status, body, and headers.
func post(t *testing.T, ts *httptest.Server, endpoint string, req Request) (int, []byte, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/"+endpoint, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out, resp.Header
}

func decode[T any](t *testing.T, body []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("decode %T from %q: %v", v, body, err)
	}
	return v
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestCompileEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, hdr := post(t, ts, "compile", Request{Name: "sum", Source: sumProg, Options: fastOpts("schematic")})
	if code != http.StatusOK {
		t.Fatalf("compile: status %d, body %s", code, body)
	}
	r := decode[CompileResponse](t, body)
	if r.Checkpoints < 1 {
		t.Errorf("schematic placement produced %d checkpoints, want >= 1", r.Checkpoints)
	}
	if r.EBnJ <= 0 {
		t.Errorf("derived EB %v, want > 0", r.EBnJ)
	}
	if !strings.Contains(r.IR, "func") {
		t.Errorf("IR missing function text: %q", r.IR)
	}
	if hdr.Get("X-Schematic-Digest") != r.Digest || len(r.Digest) != 64 {
		t.Errorf("digest mismatch: header %q vs body %q", hdr.Get("X-Schematic-Digest"), r.Digest)
	}

	// Technique "none" is the untransformed front end.
	code, body, _ = post(t, ts, "compile", Request{Name: "sum", Source: sumProg, Options: Options{Technique: "none"}})
	if code != http.StatusOK {
		t.Fatalf("compile none: status %d, body %s", code, body)
	}
	if r := decode[CompileResponse](t, body); r.Checkpoints != 0 || r.EBnJ != 0 {
		t.Errorf("technique none placed checkpoints: %+v", r)
	}
}

func TestEmulateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, _ := post(t, ts, "emulate", Request{Name: "sum", Source: sumProg, Options: fastOpts("schematic")})
	if code != http.StatusOK {
		t.Fatalf("emulate: status %d, body %s", code, body)
	}
	r := decode[EmulateResponse](t, body)
	if !r.Completed || r.Verdict != "completed" {
		t.Fatalf("verdict %q, want completed: %+v", r.Verdict, r)
	}
	if len(r.Output) != 1 {
		t.Errorf("output %v, want one printed value", r.Output)
	}
	if r.Energy.TotalNJ <= 0 || r.Energy.ComputeNJ <= 0 {
		t.Errorf("energy ledger empty: %+v", r.Energy)
	}
	if r.Steps <= 0 || r.Cycles <= 0 {
		t.Errorf("counters empty: %+v", r)
	}
}

func TestEmulateStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	opts := fastOpts("schematic")
	opts.Stream = true
	code, body, hdr := post(t, ts, "emulate", Request{Name: "sum", Source: sumProg, Options: opts})
	if code != http.StatusOK {
		t.Fatalf("stream: status %d, body %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) < 2 {
		t.Fatalf("stream produced %d lines, want events + result", len(lines))
	}
	var last struct {
		Kind   string           `json:"kind"`
		Result *EmulateResponse `json:"result"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("terminal record: %v (%q)", err, lines[len(lines)-1])
	}
	if last.Kind != "result" || last.Result == nil || !last.Result.Completed {
		t.Fatalf("terminal record %+v, want completed result", last)
	}
	// Streams bypass the result cache.
	if s, _ := ts.Client().Get(ts.URL + "/healthz"); s != nil {
		s.Body.Close()
	}
}

func TestValidateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, _ := post(t, ts, "validate", Request{Name: "sum", Source: sumProg, Options: fastOpts("schematic")})
	if code != http.StatusOK {
		t.Fatalf("validate: status %d, body %s", code, body)
	}
	if r := decode[ValidateResponse](t, body); !r.OK {
		t.Fatalf("validation failed: %+v", r)
	}
}

func TestHuntEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, _ := post(t, ts, "hunt", Request{Name: "sum", Source: sumProg, Options: fastOpts("schematic")})
	if code != http.StatusOK {
		t.Fatalf("hunt: status %d, body %s", code, body)
	}
	if r := decode[HuntResponse](t, body); !r.OK {
		t.Fatalf("hunt found a violation on a sound technique: %+v", r)
	}

	// Hunting without a placement technique is a request error.
	code, body, _ = post(t, ts, "hunt", Request{Name: "sum", Source: sumProg, Options: Options{Technique: "none"}})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("hunt none: status %d, body %s", code, body)
	}
}

func TestVerifyEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// A ratchet placement of the tiny program verifies exhaustively.
	req := Request{Name: "sum", Source: sumProg, Options: fastOpts("ratchet")}
	code, body, hdr := post(t, ts, "verify", req)
	if code != http.StatusOK {
		t.Fatalf("verify: status %d, body %s", code, body)
	}
	r := decode[VerifyResponse](t, body)
	if !r.OK || r.Verdict != "verified" {
		t.Fatalf("verify: %+v", r)
	}
	if r.States < 2 || r.Edges == 0 {
		t.Fatalf("degenerate exploration: %+v", r)
	}
	digest := hdr.Get("X-Schematic-Digest")

	// Resubmission is a cache hit with the identical body.
	misses := s.CacheStats().Misses
	code2, body2, hdr2 := post(t, ts, "verify", req)
	if code2 != http.StatusOK || !bytes.Equal(body, body2) {
		t.Fatalf("resubmit: status %d, body %s (want %s)", code2, body2, body)
	}
	if hdr2.Get("X-Schematic-Digest") != digest {
		t.Fatalf("resubmit digest %s != %s", hdr2.Get("X-Schematic-Digest"), digest)
	}
	if st := s.CacheStats(); st.Misses != misses || st.Hits == 0 {
		t.Fatalf("resubmit did not hit the cache: %+v", st)
	}

	// The search bounds participate in the digest (different options must
	// not collide with the unbounded run) and truncate the verdict.
	bounded := req
	bounded.Options.MaxStates = 2
	code, body, hdr = post(t, ts, "verify", bounded)
	if code != http.StatusOK {
		t.Fatalf("bounded verify: status %d, body %s", code, body)
	}
	if hdr.Get("X-Schematic-Digest") == digest {
		t.Fatal("bounded request shares the unbounded digest")
	}
	if r := decode[VerifyResponse](t, body); !r.OK || r.Verdict != "bounded" || r.Bound != "max-states" {
		t.Fatalf("bounded verify: %+v", r)
	}

	// A wait-style technique verifies via its contract.
	code, body, _ = post(t, ts, "verify", Request{Name: "sum", Source: sumProg, Options: fastOpts("schematic")})
	if code != http.StatusOK {
		t.Fatalf("verify schematic: status %d, body %s", code, body)
	}
	if r := decode[VerifyResponse](t, body); !r.OK || !r.WaitContract || r.Verdict != "verified" {
		t.Fatalf("wait-contract verify: %+v", r)
	}

	// Verifying without a placement technique is a request error.
	code, body, _ = post(t, ts, "verify", Request{Name: "sum", Source: sumProg, Options: Options{Technique: "none"}})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("verify none: status %d, body %s", code, body)
	}

	// The verify jobs were registered and the metrics counters moved.
	if s.verifyStates.Load() == 0 {
		t.Fatal("verify state counter never moved")
	}
	resp, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	listing, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("runs: status %d, err %v", resp.StatusCode, err)
	}
	runs := decode[RunsResponse](t, listing)
	var sawVerify bool
	for _, rs := range runs.Runs {
		if rs.Kind == "verify" && rs.Status == "done" && rs.Verdict != "" {
			sawVerify = true
		}
	}
	if !sawVerify {
		t.Fatalf("no finished verify run in registry: %+v", runs.Runs)
	}
}

func TestBenchByName(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, _ := post(t, ts, "compile", Request{Bench: "crc", Options: Options{Technique: "none"}})
	if code != http.StatusOK {
		t.Fatalf("bench compile: status %d, body %s", code, body)
	}
	if r := decode[CompileResponse](t, body); r.Name != "crc" {
		t.Errorf("bench name %q, want crc", r.Name)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Post(ts.URL+"/v1/compile", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", resp.StatusCode)
	}

	for _, bad := range []Request{
		{}, // no source
		{Source: sumProg, Options: Options{Technique: "quantum"}}, // unknown technique
		{Source: sumProg, Bench: "crc"},                           // mutually exclusive
		{Bench: "no-such-benchmark"},                              // unknown benchmark
		{Source: sumProg, Options: Options{TBPF: -1}},             // negative knob
	} {
		if code, body, _ := post(t, ts, "compile", bad); code != http.StatusBadRequest {
			t.Errorf("request %+v: status %d, body %s", bad, code, body)
		}
	}

	// A program that does not compile is the request's fault: 422.
	if code, body, _ := post(t, ts, "compile", Request{Source: "func void main() { oops }"}); code != http.StatusUnprocessableEntity {
		t.Errorf("bad program: status %d, body %s", code, body)
	}

	// Method patterns: GET on a job endpoint is 405.
	resp, err = ts.Client().Get(ts.URL + "/v1/compile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET job endpoint: status %d", resp.StatusCode)
	}
}

// TestDigestNormalization: requests that differ only in default
// spellings share one content address, so the second is a cache hit.
func TestDigestNormalization(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	a := Request{Name: "sum", Source: sumProg,
		Options: Options{Technique: "", TBPF: 500, ProfileRuns: 2, VMSize: 0, Seed: 0}}
	b := Request{Name: "sum", Source: sumProg,
		Options: Options{Technique: "Schematic", TBPF: 500, ProfileRuns: 2, VMSize: 2048, Seed: 1}}
	c1, body1, _ := post(t, ts, "compile", a)
	c2, body2, _ := post(t, ts, "compile", b)
	if c1 != 200 || c2 != 200 {
		t.Fatalf("status %d/%d", c1, c2)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("equivalent requests returned different bodies")
	}
	cs := s.CacheStats()
	if cs.Misses != 1 || cs.Hits != 1 {
		t.Errorf("cache stats %+v, want 1 miss + 1 hit", cs)
	}
}

// TestSingleFlightDedup: N identical concurrent submissions run the
// pipeline exactly once — the acceptance criterion for content-addressed
// coalescing, proven by the cache counters and the run counter.
func TestSingleFlightDedup(t *testing.T) {
	const n = 16
	s, ts := newTestServer(t, Config{Workers: 4})
	var runs atomic.Int64
	release := make(chan struct{})
	s.gate = func(string) {
		runs.Add(1)
		<-release
	}

	req := Request{Name: "sum", Source: sumProg, Options: fastOpts("schematic")}
	codes := make(chan int, n)
	bodies := make(chan string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, body, _ := post(t, ts, "emulate", req)
			codes <- code
			bodies <- string(body)
		}()
	}
	// One leader reaches the gate; the other 15 coalesce onto its entry.
	waitFor(t, "leader at gate", func() bool { return runs.Load() == 1 })
	waitFor(t, "15 coalesced followers", func() bool { return s.CacheStats().Coalesced == 15 })
	close(release)
	wg.Wait()
	close(codes)
	close(bodies)

	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("burst member got status %d", code)
		}
	}
	first := ""
	for b := range bodies {
		if first == "" {
			first = b
		} else if b != first {
			t.Fatalf("coalesced responses differ:\n%s\n%s", first, b)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("pipeline ran %d times for %d identical requests", got, n)
	}
	cs := s.CacheStats()
	if cs.Misses != 1 || cs.Coalesced != 15 {
		t.Fatalf("cache stats %+v, want misses=1 coalesced=15", cs)
	}

	// A repeat after completion is a plain hit.
	if code, _, _ := post(t, ts, "emulate", req); code != http.StatusOK {
		t.Fatalf("post-burst repeat: status %d", code)
	}
	if cs := s.CacheStats(); cs.Hits != 1 {
		t.Fatalf("cache stats %+v, want 1 hit", cs)
	}
}

// TestQueueFull429: with one worker and a one-deep queue, a third
// distinct request is rejected with 429 + Retry-After.
func TestQueueFull429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	release := make(chan struct{})
	var entered atomic.Int64
	s.gate = func(string) {
		entered.Add(1)
		<-release
	}

	mk := func(seed int64) Request {
		o := fastOpts("none")
		o.Seed = seed
		return Request{Name: "sum", Source: sumProg, Options: o}
	}
	type result struct {
		code int
		body string
	}
	results := make(chan result, 2)
	for i := int64(1); i <= 2; i++ {
		req := mk(i)
		go func() {
			code, body, _ := post(t, ts, "compile", req)
			results <- result{code, string(body)}
		}()
		if i == 1 {
			waitFor(t, "first job holding the worker", func() bool { return entered.Load() == 1 })
		} else {
			waitFor(t, "second job queued", func() bool { return s.queued.Load() == 1 })
		}
	}

	code, body, hdr := post(t, ts, "compile", mk(3))
	if code != http.StatusTooManyRequests {
		t.Fatalf("third request: status %d, body %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After header")
	}

	close(release)
	for i := 0; i < 2; i++ {
		if r := <-results; r.code != http.StatusOK {
			t.Fatalf("admitted request failed: %d %s", r.code, r.body)
		}
	}
}

// TestDrainBurst: 64 concurrent mixed requests are all admitted, the
// server starts draining mid-flight, new work is refused with 503, and
// every admitted request still completes — zero dropped in-flight jobs.
// The /metrics ledger must reconcile with the client-observed responses.
func TestDrainBurst(t *testing.T) {
	const n = 64
	const workers = 8
	s, ts := newTestServer(t, Config{Workers: workers, QueueCap: n})
	release := make(chan struct{})
	s.gate = func(string) { <-release }

	kinds := []string{"compile", "emulate", "validate", "hunt"}
	type outcome struct {
		kind string
		code int
		body string
	}
	results := make(chan outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		kind := kinds[i%len(kinds)]
		o := fastOpts("schematic")
		o.Seed = int64(i + 1) // distinct digests: every request is a leader
		req := Request{Name: "sum", Source: sumProg, Options: o}
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, body, _ := post(t, ts, kind, req)
			results <- outcome{kind, code, string(body)}
		}()
	}

	// All 64 admitted: the pool is saturated and the rest are queued.
	waitFor(t, "burst fully admitted", func() bool {
		return s.inflight.Load() == workers && s.queued.Load() == n-workers
	})
	s.BeginDrain()

	// New work is refused while draining...
	code, body, _ := post(t, ts, "compile", Request{Name: "sum", Source: sumProg, Options: fastOpts("none")})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: status %d, body %s", code, body)
	}
	// ...but observability endpoints still answer.
	hr, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if h := decode[Health](t, hbody); h.Status != "draining" {
		t.Errorf("healthz during drain: %+v", h)
	}

	close(release)
	wg.Wait()
	close(results)

	tally := map[[2]string]int64{} // {endpoint, code} -> count
	for r := range results {
		if r.code != http.StatusOK {
			t.Errorf("dropped in-flight job: %s got %d: %s", r.kind, r.code, r.body)
		}
		tally[[2]string{r.kind, strconv.Itoa(r.code)}]++
	}
	tally[[2]string{"compile", "503"}]++ // the refused post-drain probe

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain after burst: %v", err)
	}

	// The metrics ledger must agree with what the clients saw.
	mr, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	metricsTally := parseRequestTotals(t, string(mbody))
	for k, want := range tally {
		if got := metricsTally[k]; got != want {
			t.Errorf("metrics ledger %v: got %d, want %d", k, got, want)
		}
	}
	for k := range metricsTally {
		if _, ok := tally[k]; !ok {
			t.Errorf("metrics ledger has unexplained series %v", k)
		}
	}
	for _, line := range []string{"schematicd_queue_depth 0", "schematicd_inflight_jobs 0", "schematicd_draining 1"} {
		if !strings.Contains(string(mbody), line) {
			t.Errorf("metrics missing %q", line)
		}
	}
}

var requestTotalRE = regexp.MustCompile(`(?m)^schematicd_requests_total\{endpoint="(\w+)",code="(\d+)"\} (\d+)$`)

func parseRequestTotals(t *testing.T, text string) map[[2]string]int64 {
	t.Helper()
	out := map[[2]string]int64{}
	for _, m := range requestTotalRE.FindAllStringSubmatch(text, -1) {
		v, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		out[[2]string{m[1], m[2]}] = v
	}
	return out
}

// TestJobTimeout: a request deadline expires, the job reports 504, and
// the outcome is not cached (the next identical request recomputes).
func TestJobTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.gate = func(string) { time.Sleep(50 * time.Millisecond) }

	o := fastOpts("schematic")
	o.TimeoutMS = 10
	req := Request{Name: "sum", Source: sumProg, Options: o}
	code, body, _ := post(t, ts, "emulate", req)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out job: status %d, body %s", code, body)
	}
	cs := s.CacheStats()
	if cs.Misses != 1 {
		t.Fatalf("cache stats %+v", cs)
	}

	// Uncacheable: retrying is a fresh miss, and without the stall the
	// job now completes.
	s.gate = nil
	if code, body, _ = post(t, ts, "emulate", req); code != http.StatusGatewayTimeout {
		// The 10ms budget may or may not suffice on a loaded machine;
		// accept success but never a stale cached 504... which would be
		// a 504 with zero elapsed time. Either way the cache must show a
		// second miss.
		if code != http.StatusOK {
			t.Fatalf("retry: status %d, body %s", code, body)
		}
	}
	if cs := s.CacheStats(); cs.Misses != 2 || cs.Hits != 0 {
		t.Fatalf("timeout outcome was cached: %+v", cs)
	}
}

// TestHealthz covers the steady-state health report.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3})
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	h := decode[Health](t, body)
	if h.Status != "ok" || h.Workers != 3 || h.Inflight != 0 || h.QueueDepth != 0 {
		t.Fatalf("healthz %+v", h)
	}
}

// TestCacheEviction: the result cache honors its LRU bound and counts
// evictions.
func TestCacheEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheCap: 2})
	for seed := int64(1); seed <= 3; seed++ {
		o := fastOpts("none")
		o.Seed = seed
		if code, body, _ := post(t, ts, "compile", Request{Name: "sum", Source: sumProg, Options: o}); code != 200 {
			t.Fatalf("seed %d: status %d, body %s", seed, code, body)
		}
	}
	cs := s.CacheStats()
	if cs.Evictions != 1 || s.cache.Len() != 2 {
		t.Fatalf("cache stats %+v len %d, want 1 eviction and 2 entries", cs, s.cache.Len())
	}
	// Seed 1 was evicted: repeating it is a miss, not a hit.
	o := fastOpts("none")
	o.Seed = 1
	if code, _, _ := post(t, ts, "compile", Request{Name: "sum", Source: sumProg, Options: o}); code != 200 {
		t.Fatal("re-request failed")
	}
	if cs := s.CacheStats(); cs.Misses != 4 || cs.Hits != 0 {
		t.Fatalf("evicted entry still served: %+v", cs)
	}
}

// TestRunEmulateValidatesEarly: a config the emulator would reject must
// bounce out of runEmulate as a 422-class progError before the
// compile/profile/placement pipeline runs — the HTTP normalize layer
// guards the same fields, but the pipeline must not rely on it.
func TestRunEmulateValidatesEarly(t *testing.T) {
	req := &Request{Name: "sum", Source: sumProg}
	req.Options.Technique = "none"
	req.Options.VMSize = -8
	_, err := runEmulate(context.Background(), req, "digest", nil)
	if !errors.Is(err, emulator.ErrInvalidConfig) {
		t.Fatalf("runEmulate with vm_size=-8: got %v, want ErrInvalidConfig", err)
	}
	var pe *progError
	if !errors.As(err, &pe) {
		t.Fatalf("config rejection is not a progError (would not map to 422): %v", err)
	}
}
