package server

import (
	"encoding/json"

	"schematic/internal/store"
)

// The disk tier: when Config.Store is set, every successful job result
// is written through the result cache's persist hook into the
// content-addressed store, and every cache-missing leader consults the
// store before taking a worker slot. Results therefore survive
// restarts, and N replicas pointed at one -store directory share each
// other's work — a cell computed by any replica is a cross-process hit
// everywhere else.

// storedResult is the envelope persisted per digest. Kind pins the
// payload to its endpoint so a digest collision across kinds (or a
// mislabeled blob) can never decode into the wrong response type.
type storedResult struct {
	Kind string          `json:"kind"`
	Body json.RawMessage `json:"body"`
}

// kindOf maps a response value to its endpoint kind; "" means the value
// is not a persistable job result.
func kindOf(val any) string {
	switch val.(type) {
	case *CompileResponse:
		return "compile"
	case *EmulateResponse:
		return "emulate"
	case *ValidateResponse:
		return "validate"
	case *HuntResponse:
		return "hunt"
	case *VerifyResponse:
		return "verify"
	}
	// GridResponse is deliberately absent: grids reassemble from their
	// cells, which are what persists.
	return ""
}

// newResult allocates the response type a stored envelope of this kind
// decodes into.
func newResult(kind string) any {
	switch kind {
	case "compile":
		return new(CompileResponse)
	case "emulate":
		return new(EmulateResponse)
	case "validate":
		return new(ValidateResponse)
	case "hunt":
		return new(HuntResponse)
	case "verify":
		return new(VerifyResponse)
	}
	return nil
}

// storePut is the write-through hook installed on the result cache: it
// serializes a successful result and commits it under its digest.
// Store trouble is logged, never surfaced — the in-memory tier already
// holds the result and the client already has its answer.
func (s *Server) storePut(digest string, val any) {
	if s.store == nil {
		return
	}
	kind := kindOf(val)
	if kind == "" {
		return
	}
	body, err := json.Marshal(val)
	if err != nil {
		return
	}
	env, _ := json.Marshal(storedResult{Kind: kind, Body: body})
	if err := s.store.Put(digest, env); err != nil && s.cfg.Logf != nil {
		s.cfg.Logf("store: put %s: %v", short(digest), err)
	}
}

// storeGet consults the disk tier for a digest and decodes it into the
// endpoint's response type. The store already checksum-verified the
// bytes; an envelope that still fails to decode, or that carries the
// wrong kind, came from an incompatible writer and is quarantined so it
// is recomputed rather than retried forever.
func (s *Server) storeGet(kind, digest string) (any, bool) {
	if s.store == nil {
		return nil, false
	}
	payload, ok, err := s.store.Get(digest)
	if err != nil || !ok {
		return nil, false
	}
	var env storedResult
	if err := json.Unmarshal(payload, &env); err != nil || env.Kind != kind {
		s.store.Quarantine(digest)
		return nil, false
	}
	val := newResult(kind)
	if val == nil {
		return nil, false
	}
	if err := json.Unmarshal(env.Body, val); err != nil {
		s.store.Quarantine(digest)
		return nil, false
	}
	return val, true
}

// StoreStats snapshots the disk tier's counters; zero when no store is
// configured.
func (s *Server) StoreStats() store.Stats {
	if s.store == nil {
		return store.Stats{}
	}
	return s.store.Stats()
}

// short truncates a digest for log lines.
func short(digest string) string {
	if len(digest) > 12 {
		return digest[:12]
	}
	return digest
}
