package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"schematic/internal/store"
)

// openTestStore opens a store handle on dir, failing the test on error.
func openTestStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStoreRestartHit is the restart contract: fill a store through one
// Server, stand up a fresh Server (a "restarted daemon") on the same
// directory, and the same request is answered from disk without running
// the pipeline.
func TestStoreRestartHit(t *testing.T) {
	dir := t.TempDir()
	req := Request{Name: "sum", Source: sumProg, Options: fastOpts("schematic")}

	s1, ts1 := newTestServer(t, Config{Store: openTestStore(t, dir)})
	var ran1 atomic.Int64
	s1.gate = func(string) { ran1.Add(1) }
	code, body, _ := post(t, ts1, "emulate", req)
	if code != http.StatusOK {
		t.Fatalf("fill: status %d, body %s", code, body)
	}
	want := decode[EmulateResponse](t, body)
	if ran1.Load() != 1 {
		t.Fatalf("fill ran %d jobs, want 1", ran1.Load())
	}
	if st := s1.StoreStats(); st.Puts != 1 {
		t.Fatalf("fill store stats %+v, want 1 put", st)
	}

	// The "restarted" process: fresh Server, fresh store handle, same dir.
	s2, ts2 := newTestServer(t, Config{Store: openTestStore(t, dir)})
	var ran2 atomic.Int64
	s2.gate = func(string) { ran2.Add(1) }
	code, body, _ = post(t, ts2, "emulate", req)
	if code != http.StatusOK {
		t.Fatalf("after restart: status %d, body %s", code, body)
	}
	got := decode[EmulateResponse](t, body)
	if ran2.Load() != 0 {
		t.Fatalf("restarted server ran %d jobs, want 0 (store hit)", ran2.Load())
	}
	if st := s2.StoreStats(); st.Hits != 1 || st.Puts != 0 {
		t.Fatalf("restarted store stats %+v, want 1 hit / 0 puts", st)
	}
	if got.Verdict != want.Verdict || got.Cycles != want.Cycles || got.Energy.TotalNJ != want.Energy.TotalNJ {
		t.Fatalf("store round trip diverged:\n got %+v\nwant %+v", got, want)
	}

	// Third request on the restarted server: now an in-memory hit — the
	// store is only consulted on cache misses.
	if code, body, _ = post(t, ts2, "emulate", req); code != http.StatusOK {
		t.Fatalf("warm repeat: status %d, body %s", code, body)
	}
	if st := s2.StoreStats(); st.Hits != 1 {
		t.Fatalf("warm repeat went to disk: %+v", st)
	}
	if cs := s2.CacheStats(); cs.Hits != 1 {
		t.Fatalf("warm repeat cache stats %+v, want 1 hit", cs)
	}
}

// TestUncacheableNeverStored is the satellite-3 regression: what a
// timed-out job produced must not be persisted, so a follower on a
// restarted daemon can never observe it — it recomputes instead.
func TestUncacheableNeverStored(t *testing.T) {
	dir := t.TempDir()
	o := fastOpts("schematic")
	o.TimeoutMS = 10
	req := Request{Name: "sum", Source: sumProg, Options: o}

	disk := openTestStore(t, dir)
	s1, ts1 := newTestServer(t, Config{Store: disk})
	s1.gate = func(string) { time.Sleep(50 * time.Millisecond) }
	code, body, _ := post(t, ts1, "emulate", req)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("stalled job: status %d, body %s", code, body)
	}
	if st := s1.StoreStats(); st.Puts != 0 {
		t.Fatalf("timed-out result was persisted: %+v", st)
	}
	if n, err := disk.Len(); err != nil || n != 0 {
		t.Fatalf("store holds %d entries (err %v) after uncacheable outcome", n, err)
	}

	// Across the restart boundary: the follower-of-the-future sees a
	// clean miss and recomputes successfully.
	s2, ts2 := newTestServer(t, Config{Store: openTestStore(t, dir)})
	var ran atomic.Int64
	s2.gate = func(string) { ran.Add(1) }
	code, body, _ = post(t, ts2, "emulate", req)
	if code != http.StatusOK {
		t.Fatalf("after restart: status %d, body %s", code, body)
	}
	if ran.Load() != 1 {
		t.Fatalf("restarted server ran %d jobs, want 1 (recompute)", ran.Load())
	}
	if st := s2.StoreStats(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("restarted store stats %+v, want a miss then recompute", st)
	}
}

// TestStoreCorruptRecompute: a blob that rots on disk between processes
// is detected, quarantined, counted, recomputed, and rewritten — and the
// rewrite serves the next restart from disk again.
func TestStoreCorruptRecompute(t *testing.T) {
	dir := t.TempDir()
	req := Request{Name: "sum", Source: sumProg, Options: fastOpts("ratchet")}

	_, ts1 := newTestServer(t, Config{Store: openTestStore(t, dir)})
	code, body, hdr := post(t, ts1, "emulate", req)
	if code != http.StatusOK {
		t.Fatalf("fill: status %d, body %s", code, body)
	}
	want := decode[EmulateResponse](t, body)
	digest := hdr.Get("X-Schematic-Digest")

	// Bit rot: flip one payload byte in the committed entry.
	p := filepath.Join(dir, digest[:2], digest[2:])
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x20
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, Config{Store: openTestStore(t, dir)})
	var ran atomic.Int64
	s2.gate = func(string) { ran.Add(1) }
	code, body, _ = post(t, ts2, "emulate", req)
	if code != http.StatusOK {
		t.Fatalf("after corruption: status %d, body %s", code, body)
	}
	got := decode[EmulateResponse](t, body)
	if got.Verdict != want.Verdict || got.Cycles != want.Cycles {
		t.Fatalf("recompute diverged: got %+v want %+v", got, want)
	}
	if ran.Load() != 1 {
		t.Fatalf("corrupt entry served without recompute (ran=%d)", ran.Load())
	}
	st := s2.StoreStats()
	if st.Corrupt != 1 || st.Hits != 0 || st.Puts != 1 {
		t.Fatalf("store stats after corruption %+v, want 1 corrupt / 0 hits / 1 put", st)
	}
	// The counter surfaces as schematicd_store_corrupt_total.
	resp, err := ts2.Client().Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("schematicd_store_corrupt_total 1")) {
		t.Error("store_corrupt_total not exported after quarantine")
	}

	// The rewrite restored durability: a third process hits clean.
	s3, ts3 := newTestServer(t, Config{Store: openTestStore(t, dir)})
	var ran3 atomic.Int64
	s3.gate = func(string) { ran3.Add(1) }
	if code, body, _ = post(t, ts3, "emulate", req); code != http.StatusOK {
		t.Fatalf("after rewrite: status %d, body %s", code, body)
	}
	if ran3.Load() != 0 {
		t.Fatal("rewritten entry did not serve the next restart")
	}
	if st := s3.StoreStats(); st.Hits != 1 || st.Corrupt != 0 {
		t.Fatalf("post-rewrite store stats %+v", st)
	}
}

// TestStoreUndecodableQuarantined: an entry whose checksum verifies but
// whose envelope does not decode (wrong kind — an incompatible writer)
// is quarantined and recomputed rather than served or retried forever.
func TestStoreUndecodableQuarantined(t *testing.T) {
	dir := t.TempDir()
	req := Request{Name: "sum", Source: sumProg, Options: fastOpts("schematic")}
	digest, err := DigestOf("emulate", req)
	if err != nil {
		t.Fatal(err)
	}
	seed := openTestStore(t, dir)
	// A checksum-valid entry carrying the wrong kind under this digest.
	if err := seed.Put(digest, []byte(`{"kind":"compile","body":{}}`)); err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t, Config{Store: openTestStore(t, dir)})
	var ran atomic.Int64
	s.gate = func(string) { ran.Add(1) }
	code, body, _ := post(t, ts, "emulate", req)
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, body)
	}
	if ran.Load() != 1 {
		t.Fatalf("mislabeled entry short-circuited the pipeline (ran=%d)", ran.Load())
	}
	if st := s.StoreStats(); st.Corrupt != 1 || st.Puts != 1 {
		t.Fatalf("store stats %+v, want quarantine + rewrite", st)
	}
}

// TestConcurrentServersSharedDir runs two Servers ("replicas") over one
// store directory under concurrent mixed traffic — the multi-replica
// sharing contract, exercised under -race. Every response must be 200
// and byte-consistent per digest, with zero corruption.
func TestConcurrentServersSharedDir(t *testing.T) {
	dir := t.TempDir()
	sA, tsA := newTestServer(t, Config{Workers: 4, Store: openTestStore(t, dir)})
	sB, tsB := newTestServer(t, Config{Workers: 4, Store: openTestStore(t, dir)})

	reqs := make([]Request, 6)
	for i := range reqs {
		o := fastOpts("schematic")
		o.Seed = int64(1 + i%3) // three distinct workloads, shared across replicas
		reqs[i] = Request{Name: fmt.Sprintf("sum-%d", i%3), Source: sumProg, Options: o}
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results = map[string]string{} // digest -> verdict+cycles fingerprint
		fail    atomic.Int64
	)
	for round := 0; round < 3; round++ {
		for i := range reqs {
			for _, ts := range []*httptest.Server{tsA, tsB} {
				wg.Add(1)
				go func(ts *httptest.Server, i int) {
					defer wg.Done()
					code, body, hdr := post(t, ts, "emulate", reqs[i])
					if code != http.StatusOK {
						fail.Add(1)
						return
					}
					r := decode[EmulateResponse](t, body)
					fp := fmt.Sprintf("%s/%d/%g", r.Verdict, r.Cycles, r.Energy.TotalNJ)
					mu.Lock()
					defer mu.Unlock()
					d := hdr.Get("X-Schematic-Digest")
					if prev, ok := results[d]; ok && prev != fp {
						t.Errorf("digest %s served divergent results: %s vs %s", d[:12], prev, fp)
					}
					results[d] = fp
				}(ts, i)
			}
		}
	}
	wg.Wait()
	if fail.Load() != 0 {
		t.Fatalf("%d requests failed", fail.Load())
	}
	if len(results) != 3 {
		t.Fatalf("saw %d distinct digests, want 3", len(results))
	}
	for _, s := range []*Server{sA, sB} {
		if st := s.StoreStats(); st.Corrupt != 0 {
			t.Fatalf("replica saw corruption: %+v", st)
		}
	}
	// Cross-replica sharing happened: at least one replica read a result
	// the other wrote (the schedule decides which).
	if sA.StoreStats().Hits+sB.StoreStats().Hits == 0 {
		t.Log("note: no cross-replica store hit this schedule (all races won locally)")
	}
}
