// Package store is a disk-backed content-addressed artifact store: the
// durable second tier under schematicd's in-memory result cache. Each
// entry maps a request digest (hex SHA-256) to an opaque payload — the
// serialized pipeline result — laid out in two-level fan-out
// directories (<dir>/<digest[:2]>/<digest[2:]>) so no single directory
// grows unbounded.
//
// Durability and integrity rules:
//
//   - Writes are atomic: the entry is staged in a temp file in the
//     store root and published with a rename, so a reader (in this
//     process or another) never observes a half-written entry and a
//     crash mid-write leaves at most a stray temp file.
//   - Every entry carries a header with the payload's SHA-256 and
//     length. Reads verify both; an entry that fails (torn write,
//     bit rot, truncation) is quarantined — moved aside, never
//     deleted — and reported as a miss, so the caller recomputes and
//     rewrites it.
//   - An optional capacity bound garbage-collects oldest-modified
//     entries after each write that exceeds it.
//   - Fsync-on-commit optionally syncs the entry and its fan-out
//     directory before the rename publishes it, trading write latency
//     for power-failure durability (fitting, for this repository).
//
// A Store is safe for concurrent use by multiple goroutines and —
// because reads go to disk and writes are atomic renames — by multiple
// processes sharing one directory. Counters are per-process.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// quarantineDir under the store root receives entries that failed
// verification; they are kept for post-mortems, not garbage-collected.
const quarantineDir = "quarantine"

// Options configure Open.
type Options struct {
	// Cap bounds the number of entries; 0 means unlimited. When a write
	// pushes the store past the bound, oldest-modified entries are
	// removed until it fits again.
	Cap int
	// Fsync syncs entry data and the fan-out directory on every commit.
	Fsync bool
}

// Stats is a snapshot of the per-process counters. Hits and Misses
// count Get outcomes (a verification failure is a miss and a Corrupt),
// Puts counts committed writes, Evictions counts GC removals.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Puts      int64 `json:"puts"`
	Corrupt   int64 `json:"corrupt"`
	Evictions int64 `json:"evictions"`
}

// Store is one handle on a store directory. See the package comment
// for the concurrency and durability contract.
type Store struct {
	dir   string
	cap   int
	fsync bool

	gcMu  sync.Mutex   // serializes capacity scans
	count atomic.Int64 // approximate entry count (exact for one process)

	hits, misses, puts, corrupt, evictions atomic.Int64
}

// header is the first line of every entry file; the payload bytes
// follow the newline. Sum and Len pin the payload; Digest pins the
// entry to its filename (a blob renamed to the wrong address fails).
type header struct {
	V      int    `json:"v"`
	Digest string `json:"digest"`
	Sum    string `json:"sum"`
	Len    int    `json:"len"`
	Saved  string `json:"saved_at,omitempty"` // RFC 3339, informational
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, cap: opts.Cap, fsync: opts.Fsync}
	n, _, err := s.scan()
	if err != nil {
		return nil, err
	}
	s.count.Store(int64(n))
	return s, nil
}

// Dir reports the store root.
func (s *Store) Dir() string { return s.dir }

// Stats snapshots the per-process counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Puts:      s.puts.Load(),
		Corrupt:   s.corrupt.Load(),
		Evictions: s.evictions.Load(),
	}
}

// Len reports the exact on-disk entry count (a directory scan — cheap
// for test-sized stores, not for the hot path).
func (s *Store) Len() (int, error) {
	n, _, err := s.scan()
	return n, err
}

// path maps a digest to its entry file, rejecting anything that is not
// plain lowercase hex (nothing else may escape into the filesystem).
func (s *Store) path(digest string) (string, error) {
	if len(digest) < 8 {
		return "", fmt.Errorf("store: digest %q too short", digest)
	}
	for _, c := range []byte(digest) {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", fmt.Errorf("store: digest %q is not lowercase hex", digest)
		}
	}
	return filepath.Join(s.dir, digest[:2], digest[2:]), nil
}

// Get returns the payload stored under digest. ok is false on a miss —
// including an entry that failed verification, which is quarantined on
// the way out. The error reports I/O trouble, never a mere miss.
func (s *Store) Get(digest string) (payload []byte, ok bool, err error) {
	p, err := s.path(digest)
	if err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		s.misses.Add(1)
		return nil, false, nil
	}
	if err != nil {
		s.misses.Add(1)
		return nil, false, fmt.Errorf("store: read %s: %w", digest, err)
	}
	payload, verr := verify(digest, data)
	if verr != nil {
		s.quarantine(p)
		s.misses.Add(1)
		return nil, false, nil
	}
	s.hits.Add(1)
	return payload, true, nil
}

// verify splits an entry file into header + payload and checks every
// pin: header shape, digest, length, checksum.
func verify(digest string, data []byte) ([]byte, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("no header line")
	}
	var h header
	if err := json.Unmarshal(data[:nl], &h); err != nil {
		return nil, fmt.Errorf("bad header: %w", err)
	}
	payload := data[nl+1:]
	if h.V != 1 || h.Digest != digest || h.Len != len(payload) {
		return nil, fmt.Errorf("header mismatch")
	}
	sum := sha256.Sum256(payload)
	if h.Sum != hex.EncodeToString(sum[:]) {
		return nil, fmt.Errorf("checksum mismatch")
	}
	return payload, nil
}

// Put commits payload under digest: temp file, optional fsync, rename.
// Re-putting an existing digest atomically replaces it (content
// addressing makes the two interchangeable).
func (s *Store) Put(digest string, payload []byte) error {
	p, err := s.path(digest)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sum := sha256.Sum256(payload)
	hdr, err := json.Marshal(header{
		V:      1,
		Digest: digest,
		Sum:    hex.EncodeToString(sum[:]),
		Len:    len(payload),
		Saved:  time.Now().UTC().Format(time.RFC3339Nano),
	})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}

	tmp, err := os.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	_, werr := tmp.Write(append(append(hdr, '\n'), payload...))
	if werr == nil && s.fsync {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("store: write %s: %w", digest, werr)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	fresh := true
	if _, err := os.Stat(p); err == nil {
		fresh = false
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		return fmt.Errorf("store: commit %s: %w", digest, err)
	}
	if s.fsync {
		syncDir(filepath.Dir(p))
	}
	s.puts.Add(1)
	if fresh {
		if s.count.Add(1); s.cap > 0 && s.count.Load() > int64(s.cap) {
			return s.gc()
		}
	}
	return nil
}

// Quarantine moves the digest's entry aside and counts it corrupt —
// for callers that discover a blob is unusable after Get verified its
// bytes (e.g. an undecodable payload from an incompatible writer).
func (s *Store) Quarantine(digest string) {
	if p, err := s.path(digest); err == nil {
		s.quarantine(p)
	}
}

// quarantine moves an entry file into the quarantine directory under a
// unique name and counts it. Best-effort: on any error the entry is
// removed instead, so a poisoned blob can never be served again.
func (s *Store) quarantine(p string) {
	s.corrupt.Add(1)
	qdir := filepath.Join(s.dir, quarantineDir)
	dest := filepath.Join(qdir, fmt.Sprintf("%s.%d", filepath.Base(p), time.Now().UnixNano()))
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if os.Rename(p, dest) == nil {
			s.count.Add(-1)
			return
		}
	}
	if os.Remove(p) == nil {
		s.count.Add(-1)
	}
}

// scan walks the fan-out directories, returning the entry count and
// each entry's path + mtime (for GC ordering). Temp files and the
// quarantine are invisible to it.
type entryInfo struct {
	path  string
	mtime time.Time
}

func (s *Store) scan() (int, []entryInfo, error) {
	var entries []entryInfo
	subs, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, nil, fmt.Errorf("store: %w", err)
	}
	for _, sub := range subs {
		if !sub.IsDir() || sub.Name() == quarantineDir {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, sub.Name()))
		if err != nil {
			if os.IsNotExist(err) {
				continue // lost a GC race with another replica
			}
			return 0, nil, fmt.Errorf("store: %w", err)
		}
		for _, f := range files {
			if f.IsDir() {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue // deleted mid-scan by a sibling process
			}
			entries = append(entries, entryInfo{
				path:  filepath.Join(s.dir, sub.Name(), f.Name()),
				mtime: info.ModTime(),
			})
		}
	}
	return len(entries), entries, nil
}

// gc rescans the store (the authoritative count — siblings may have
// written too) and removes oldest-modified entries until the bound
// holds again.
func (s *Store) gc() error {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	n, entries, err := s.scan()
	if err != nil {
		return err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })
	for _, e := range entries {
		if n <= s.cap {
			break
		}
		if err := os.Remove(e.path); err == nil || os.IsNotExist(err) {
			n--
			if err == nil {
				s.evictions.Add(1)
			}
		}
	}
	s.count.Store(int64(n))
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss. Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// Walk visits every committed entry digest (reconstructed from the
// fan-out layout), in unspecified order. Used by tooling and tests.
func (s *Store) Walk(fn func(digest string) error) error {
	_, entries, err := s.scan()
	if err != nil {
		return err
	}
	for _, e := range entries {
		digest := filepath.Base(filepath.Dir(e.path)) + filepath.Base(e.path)
		if err := fn(digest); err != nil {
			return err
		}
	}
	return nil
}
