package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// digestOf builds a valid content address for an arbitrary payload —
// tests address entries the way the server does, by hex SHA-256.
func digestOf(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRoundTripProperty: random payloads of random sizes survive
// Put/Get byte-identically, both through the writing handle and through
// a fresh handle on the same directory (the restart path).
func TestRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	rng := rand.New(rand.NewSource(42))

	payloads := map[string][]byte{}
	for i := 0; i < 64; i++ {
		p := make([]byte, rng.Intn(8<<10)) // includes the empty payload
		rng.Read(p)
		// Make every payload unique even when sizes collide.
		p = append(p, byte(i))
		d := digestOf(p)
		payloads[d] = p
		if err := s.Put(d, p); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	check := func(s *Store, label string) {
		t.Helper()
		for d, want := range payloads {
			got, ok, err := s.Get(d)
			if err != nil || !ok {
				t.Fatalf("%s: get %s: ok=%v err=%v", label, d[:12], ok, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: payload %s corrupted in flight", label, d[:12])
			}
		}
	}
	check(s, "same handle")

	// A fresh handle (a restarted process) sees every entry.
	s2 := open(t, dir, Options{})
	check(s2, "reopened handle")
	if n, err := s2.Len(); err != nil || n != len(payloads) {
		t.Fatalf("reopened store has %d entries (err %v), want %d", n, err, len(payloads))
	}
	if st := s2.Stats(); st.Hits != int64(len(payloads)) || st.Misses != 0 || st.Corrupt != 0 {
		t.Fatalf("reopened stats %+v", st)
	}

	// Overwrite is idempotent, not duplicating.
	for d, p := range payloads {
		if err := s2.Put(d, p); err != nil {
			t.Fatal(err)
		}
		break
	}
	if n, _ := s2.Len(); n != len(payloads) {
		t.Fatalf("re-put duplicated an entry: %d", n)
	}
}

// TestFanoutLayout: entries land under two-level fan-out directories.
func TestFanoutLayout(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	p := []byte(`{"x":1}`)
	d := digestOf(p)
	if err := s.Put(d, p); err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(dir, d[:2], d[2:])
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("entry not at fan-out path %s: %v", want, err)
	}
}

func TestRejectsBadDigests(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	for _, bad := range []string{"", "short", "ABCDEF0123456789", "../../../../etc/passwd", "0123456789abcdef/"} {
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Errorf("put %q accepted", bad)
		}
		if _, _, err := s.Get(bad); err == nil {
			t.Errorf("get %q accepted", bad)
		}
	}
}

// corruptEntry applies fn to the raw entry file.
func corruptEntry(t *testing.T, s *Store, digest string, fn func(path string, data []byte)) {
	t.Helper()
	p, err := s.path(digest)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	fn(p, data)
}

// TestTornAndBitFlippedWrites: a truncated or bit-flipped entry is
// detected on read, quarantined (not deleted), reported as a miss, and
// recomputable: a fresh Put re-establishes the address.
func TestTornAndBitFlippedWrites(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(path string, data []byte)
	}{
		{"truncated", func(path string, data []byte) {
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"payload bit flip", func(path string, data []byte) {
			data[len(data)-1] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"header bit flip", func(path string, data []byte) {
			data[2] ^= 0x01
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"empty file", func(path string, data []byte) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, dir, Options{})
			payload := []byte(fmt.Sprintf(`{"result":%d,"filler":"0123456789abcdef"}`, i))
			d := digestOf(payload)
			if err := s.Put(d, payload); err != nil {
				t.Fatal(err)
			}
			corruptEntry(t, s, d, tc.corrupt)

			got, ok, err := s.Get(d)
			if err != nil || ok || got != nil {
				t.Fatalf("corrupt entry served: ok=%v err=%v", ok, err)
			}
			st := s.Stats()
			if st.Corrupt != 1 || st.Misses != 1 || st.Hits != 0 {
				t.Fatalf("stats after corruption %+v", st)
			}
			// The blob moved to quarantine; the address is free again.
			if p, _ := s.path(d); fileExists(p) {
				t.Fatal("corrupt entry still at its address")
			}
			qfiles, err := os.ReadDir(filepath.Join(dir, quarantineDir))
			if err != nil || len(qfiles) != 1 {
				t.Fatalf("quarantine holds %d files (err %v), want 1", len(qfiles), err)
			}
			// Recompute-and-rewrite restores service.
			if err := s.Put(d, payload); err != nil {
				t.Fatal(err)
			}
			got, ok, err = s.Get(d)
			if err != nil || !ok || !bytes.Equal(got, payload) {
				t.Fatalf("rewrite not served: ok=%v err=%v", ok, err)
			}
		})
	}
}

func fileExists(p string) bool {
	_, err := os.Stat(p)
	return err == nil
}

// TestQuarantineMethod: a caller can evict a verified-but-undecodable
// blob; it counts corrupt and frees the address.
func TestQuarantineMethod(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	p := []byte("not json at all")
	d := digestOf(p)
	if err := s.Put(d, p); err != nil {
		t.Fatal(err)
	}
	s.Quarantine(d)
	if _, ok, _ := s.Get(d); ok {
		t.Fatal("quarantined entry still served")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats %+v, want 1 corrupt", st)
	}
}

// TestCapacityGC: the bound holds after overflow, oldest-modified
// entries go first, and the newest survive.
func TestCapacityGC(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{Cap: 3})
	var digests []string
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 6; i++ {
		p := []byte(fmt.Sprintf("payload-%d", i))
		d := digestOf(p)
		digests = append(digests, d)
		if err := s.Put(d, p); err != nil {
			t.Fatal(err)
		}
		// Pin distinct mtimes so GC ordering is deterministic even on
		// coarse-grained filesystems.
		path, _ := s.path(d)
		when := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(path, when, when); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := s.Len(); err != nil || n > 3 {
		t.Fatalf("store holds %d entries (err %v), cap 3", n, err)
	}
	if st := s.Stats(); st.Evictions < 2 {
		t.Fatalf("stats %+v, want >= 2 evictions", st)
	}
	// The newest entries are the survivors.
	for _, d := range digests[len(digests)-2:] {
		if _, ok, err := s.Get(d); err != nil || !ok {
			t.Fatalf("newest entry %s evicted (ok=%v err=%v)", d[:12], ok, err)
		}
	}
	// The oldest are gone.
	if _, ok, _ := s.Get(digests[0]); ok {
		t.Fatal("oldest entry survived GC")
	}
}

// TestFsyncOption: the fsync path commits readable entries (we cannot
// cut power in a unit test, but the code path must work).
func TestFsyncOption(t *testing.T) {
	s := open(t, t.TempDir(), Options{Fsync: true})
	p := []byte(`{"durable":true}`)
	d := digestOf(p)
	if err := s.Put(d, p); err != nil {
		t.Fatal(err)
	}
	if got, ok, err := s.Get(d); err != nil || !ok || !bytes.Equal(got, p) {
		t.Fatalf("fsync put unreadable: ok=%v err=%v", ok, err)
	}
}

// TestStrayTempFilesInvisible: a crash mid-write leaves a temp file;
// it must not count as an entry or break scans.
func TestStrayTempFilesInvisible(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "tmp-12345"), []byte("half a wri"), 0o600); err != nil {
		t.Fatal(err)
	}
	s := open(t, dir, Options{})
	if n, err := s.Len(); err != nil || n != 0 {
		t.Fatalf("stray temp file counted: n=%d err=%v", n, err)
	}
}

// TestConcurrentMultiHandleSameDir: two handles on one directory (two
// "replicas") under concurrent mixed Put/Get traffic — the multi-server
// sharing contract, exercised under -race. Every read must be either a
// clean miss or the exact committed payload; corruption must never be
// reported.
func TestConcurrentMultiHandleSameDir(t *testing.T) {
	dir := t.TempDir()
	a := open(t, dir, Options{})
	b := open(t, dir, Options{})

	const writers, rounds = 4, 50
	payloads := make([][]byte, 16)
	digests := make([]string, 16)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf(`{"cell":%d,"body":"%064d"}`, i, i))
		digests[i] = digestOf(payloads[i])
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		for _, s := range []*Store{a, b} {
			wg.Add(1)
			go func(s *Store, w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				for r := 0; r < rounds; r++ {
					i := rng.Intn(len(digests))
					if rng.Intn(2) == 0 {
						if err := s.Put(digests[i], payloads[i]); err != nil {
							t.Errorf("put: %v", err)
							return
						}
					} else {
						got, ok, err := s.Get(digests[i])
						if err != nil {
							t.Errorf("get: %v", err)
							return
						}
						if ok && !bytes.Equal(got, payloads[i]) {
							t.Errorf("digest %s served foreign bytes", digests[i][:12])
							return
						}
					}
				}
			}(s, w)
		}
	}
	wg.Wait()
	if st := a.Stats(); st.Corrupt != 0 {
		t.Fatalf("handle a saw corruption under concurrency: %+v", st)
	}
	if st := b.Stats(); st.Corrupt != 0 {
		t.Fatalf("handle b saw corruption under concurrency: %+v", st)
	}
	// Every digest that was written is now readable through both handles.
	for i, d := range digests {
		ga, oka, _ := a.Get(d)
		gb, okb, _ := b.Get(d)
		if oka != okb {
			t.Fatalf("handles disagree on %s", d[:12])
		}
		if oka && (!bytes.Equal(ga, payloads[i]) || !bytes.Equal(gb, payloads[i])) {
			t.Fatalf("payload %d corrupted", i)
		}
	}
}
