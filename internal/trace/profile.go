// Package trace implements the profiling step of SCHEMATIC (paper,
// III-A3): programs are executed many times with randomly generated inputs
// under the emulator, gathering basic-block and edge execution counts.
// Checkpoint placement uses the counts to prioritize frequently executed
// paths, and the experiment harness uses the measured average energy per
// cycle to convert a time-between-power-failures (TBPF) into the energy
// budget EB (paper, IV-C).
//
// Profiles are keyed by function and block *names*, so a profile collected
// on one module applies to any structurally identical clone of it (the
// usual flow: profile the pristine module once, then transform clones).
package trace

import (
	"fmt"
	"math/rand"
	"time"

	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/ir"
)

// Options configures profiling.
type Options struct {
	// Runs is the number of profiling executions (the paper uses 1000).
	// Zero selects 100, which is plenty for the bundled benchmarks while
	// keeping test time reasonable.
	Runs int
	// Seed makes input generation reproducible.
	Seed int64
	// Model is the energy model; nil selects the MSP430FR5969 default.
	Model *energy.Model
	// InputGen produces workload data for an input variable; nil selects
	// uniform random words.
	InputGen func(r *rand.Rand, v *ir.Var) []int64
	// MaxSteps bounds each profiling run.
	MaxSteps int64
}

// edgeKey names a CFG edge.
type edgeKey struct {
	From, To string
}

// blockKey names a block within a function.
type blockKey struct {
	Func, Block string
}

// Profile holds the gathered execution statistics. A Profile is
// immutable once Collect returns, so it may be shared across goroutines
// without synchronization.
type Profile struct {
	Runs int
	// Seed is the input-generation seed the profile was collected with.
	Seed int64
	// Elapsed is the wall time Collect spent gathering the profile.
	Elapsed time.Duration

	edgeCount   map[string]map[edgeKey]int64 // by function name
	blockCount  map[blockKey]int64
	invocations map[string]int64

	// AvgEnergyPerCycle is total energy / total cycles across the
	// profiling runs (all data in NVM, continuous power) in nJ/cycle.
	AvgEnergyPerCycle float64
	// AvgCycles and AvgEnergy are per-run averages of the reference runs.
	AvgCycles float64
	AvgEnergy float64

	loopIterEstimate map[blockKey]int
}

// RandomInputs generates input data for every input variable of m using
// the default generator (uniform random 16-bit words).
func RandomInputs(m *ir.Module, r *rand.Rand) map[string][]int64 {
	return inputsWith(m, r, nil)
}

func inputsWith(m *ir.Module, r *rand.Rand, gen func(*rand.Rand, *ir.Var) []int64) map[string][]int64 {
	inputs := map[string][]int64{}
	for _, v := range m.InputVars() {
		if gen != nil {
			inputs[v.Name] = gen(r, v)
			continue
		}
		data := make([]int64, v.Elems)
		for i := range data {
			data[i] = int64(r.Intn(1 << 15))
		}
		inputs[v.Name] = data
	}
	return inputs
}

// Collect profiles the module. The module must be untransformed (no
// checkpoints); it is executed on continuous power with all data in NVM.
func Collect(m *ir.Module, opts Options) (*Profile, error) {
	if opts.Runs == 0 {
		opts.Runs = 100
	}
	model := opts.Model
	if model == nil {
		model = energy.MSP430FR5969()
	}
	start := time.Now()
	p := &Profile{
		Runs:             opts.Runs,
		Seed:             opts.Seed,
		edgeCount:        map[string]map[edgeKey]int64{},
		blockCount:       map[blockKey]int64{},
		invocations:      map[string]int64{},
		loopIterEstimate: map[blockKey]int{},
	}
	for _, f := range m.Funcs {
		p.edgeCount[f.Name] = map[edgeKey]int64{}
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	var totalCycles int64
	var totalEnergy float64
	// A stack of (function, previously entered block) mirrors the call
	// stack exactly via the Trace/TraceRet callbacks, attributing each
	// block entry to an intra-function CFG edge.
	for run := 0; run < opts.Runs; run++ {
		type level struct {
			fn   *ir.Func
			prev *ir.Block
		}
		var stack []level
		cfgE := emulator.Config{
			Model:    model,
			Inputs:   inputsWith(m, rng, opts.InputGen),
			MaxSteps: opts.MaxSteps,
			Trace: func(fn *ir.Func, b *ir.Block) {
				if b == fn.Entry() && (len(stack) == 0 || stack[len(stack)-1].fn != fn) {
					stack = append(stack, level{fn: fn})
					p.invocations[fn.Name]++
				}
				lv := &stack[len(stack)-1]
				if lv.prev != nil && isSucc(lv.prev, b) {
					p.edgeCount[fn.Name][edgeKey{lv.prev.Name, b.Name}]++
				}
				p.blockCount[blockKey{fn.Name, b.Name}]++
				lv.prev = b
			},
			TraceRet: func() {
				if len(stack) > 0 {
					stack = stack[:len(stack)-1]
				}
			},
		}
		res, err := emulator.Run(m, cfgE)
		if err != nil {
			return nil, fmt.Errorf("trace: profiling run %d: %w", run, err)
		}
		if res.Verdict != emulator.Completed {
			return nil, fmt.Errorf("trace: profiling run %d did not complete: %v", run, res.Verdict)
		}
		totalCycles += res.Cycles
		totalEnergy += res.Energy.Total()
	}
	if totalCycles > 0 {
		p.AvgEnergyPerCycle = totalEnergy / float64(totalCycles)
	}
	p.AvgCycles = float64(totalCycles) / float64(opts.Runs)
	p.AvgEnergy = totalEnergy / float64(opts.Runs)
	p.estimateLoopIters(m)
	p.Elapsed = time.Since(start)
	return p, nil
}

func isSucc(from, to *ir.Block) bool {
	for _, s := range from.Succs() {
		if s == to {
			return true
		}
	}
	return false
}

// estimateLoopIters derives average trip counts from edge counts: for a
// loop with header h, iterations/entry ≈ header executions / entries,
// where entries = header executions − back-edge traversals.
func (p *Profile) estimateLoopIters(m *ir.Module) {
	for _, f := range m.Funcs {
		for _, e := range ir.Edges(f) {
			header := e.To
			key := blockKey{f.Name, header.Name}
			hc := p.blockCount[key]
			bc := p.edgeCount[f.Name][edgeKey{e.From.Name, e.To.Name}]
			if bc == 0 || hc == 0 {
				continue
			}
			entries := hc - bc
			if entries <= 0 {
				continue
			}
			est := int((hc + entries - 1) / entries)
			if est > p.loopIterEstimate[key] {
				p.loopIterEstimate[key] = est
			}
		}
	}
}

// EdgeFreq returns the profiled traversal count of e (by name, so clones
// of the profiled module resolve correctly).
func (p *Profile) EdgeFreq(f *ir.Func, e ir.Edge) int64 {
	return p.edgeCount[f.Name][edgeKey{e.From.Name, e.To.Name}]
}

// BlockFreq returns the profiled execution count of b.
func (p *Profile) BlockFreq(f *ir.Func, b *ir.Block) int64 {
	return p.blockCount[blockKey{f.Name, b.Name}]
}

// Invocations returns how often the function was called across all runs.
func (p *Profile) Invocations(f *ir.Func) int64 { return p.invocations[f.Name] }

// LoopIterEstimate returns the estimated trip count of the loop headed at
// the given block, or 0 when unknown.
func (p *Profile) LoopIterEstimate(header *ir.Block) int {
	if header.Func == nil {
		return 0
	}
	return p.loopIterEstimate[blockKey{header.Func.Name, header.Name}]
}

// EBForTBPF converts a time between power failures (in cycles) into the
// energy budget EB (nJ): "for each value of TBPF we set EB to the average
// amount of energy that is consumed by the platform in the interval"
// (paper, IV-C).
func (p *Profile) EBForTBPF(tbpf int64) float64 {
	return float64(tbpf) * p.AvgEnergyPerCycle
}
