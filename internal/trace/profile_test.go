package trace

import (
	"math/rand"
	"testing"

	"schematic/internal/ir"
	"schematic/internal/minic"
)

const profSrc = `
input int data[16];
int acc;

func int step(int x) {
  if (x > 100) {
    return x - 100;
  }
  return x;
}

func void main() {
  int i;
  acc = 0;
  for (i = 0; i < 16; i = i + 1) @max(16) {
    acc = acc + step(data[i]);
  }
  print(acc);
}
`

func TestCollectBasics(t *testing.T) {
	m := minic.MustCompile("prof", profSrc)
	p, err := Collect(m, Options{Runs: 20, Seed: 42})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if p.Runs != 20 {
		t.Errorf("Runs = %d", p.Runs)
	}
	if p.Seed != 42 {
		t.Errorf("Seed = %d, want 42 (collection parameters must be recorded)", p.Seed)
	}
	if p.Elapsed <= 0 {
		t.Errorf("Elapsed = %v, want > 0", p.Elapsed)
	}
	mainF := m.FuncByName("main")
	stepF := m.FuncByName("step")

	if got := p.Invocations(mainF); got != 20 {
		t.Errorf("main invocations = %d, want 20", got)
	}
	if got := p.Invocations(stepF); got != 20*16 {
		t.Errorf("step invocations = %d, want 320", got)
	}
	// The loop body runs 16 times per run.
	var body *ir.Block
	for _, b := range mainF.Blocks {
		if b.Name == "for.body" {
			body = b
		}
	}
	if body == nil {
		t.Fatal("no for.body")
	}
	if got := p.BlockFreq(mainF, body); got != 20*16 {
		t.Errorf("body freq = %d, want 320", got)
	}
	if p.AvgEnergyPerCycle <= 0 {
		t.Errorf("AvgEnergyPerCycle = %v", p.AvgEnergyPerCycle)
	}
	if p.AvgCycles <= 0 || p.AvgEnergy <= 0 {
		t.Errorf("averages not recorded: %+v", p)
	}
}

func TestEdgeCountsConsistent(t *testing.T) {
	m := minic.MustCompile("prof", profSrc)
	p, err := Collect(m, Options{Runs: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mainF := m.FuncByName("main")
	// Block frequency equals the sum of incoming edge frequencies for every
	// block with predecessors (entry blocks are entered by call).
	for _, b := range mainF.Blocks {
		preds := b.Preds()
		if len(preds) == 0 {
			continue
		}
		var in int64
		for _, pr := range preds {
			in += p.EdgeFreq(mainF, ir.Edge{From: pr, To: b})
		}
		if in != p.BlockFreq(mainF, b) {
			t.Errorf("block %s: incoming %d != freq %d", b.Name, in, p.BlockFreq(mainF, b))
		}
	}
}

func TestBranchFrequenciesReflectInputs(t *testing.T) {
	m := minic.MustCompile("prof", profSrc)
	// All inputs above 100: the step 'then' arm always taken.
	gen := func(r *rand.Rand, v *ir.Var) []int64 {
		data := make([]int64, v.Elems)
		for i := range data {
			data[i] = 150
		}
		return data
	}
	p, err := Collect(m, Options{Runs: 3, Seed: 1, InputGen: gen})
	if err != nil {
		t.Fatal(err)
	}
	stepF := m.FuncByName("step")
	var thenB *ir.Block
	for _, b := range stepF.Blocks {
		if b.Name == "if.then" {
			thenB = b
		}
	}
	if thenB == nil {
		t.Fatal("no if.then in step")
	}
	if got := p.BlockFreq(stepF, thenB); got != 3*16 {
		t.Errorf("then freq = %d, want 48", got)
	}
}

func TestLoopIterEstimate(t *testing.T) {
	m := minic.MustCompile("prof", profSrc)
	p, err := Collect(m, Options{Runs: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	mainF := m.FuncByName("main")
	var head *ir.Block
	for _, b := range mainF.Blocks {
		if b.Name == "for.head" {
			head = b
		}
	}
	est := p.LoopIterEstimate(head)
	// The loop runs exactly 16 iterations: the header executes 17 times per
	// entry, so the estimate should be about 17.
	if est < 16 || est > 18 {
		t.Errorf("loop estimate = %d, want ≈17", est)
	}
}

func TestEBForTBPF(t *testing.T) {
	m := minic.MustCompile("prof", profSrc)
	p, err := Collect(m, Options{Runs: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	eb1 := p.EBForTBPF(1000)
	eb10 := p.EBForTBPF(10000)
	if eb1 <= 0 {
		t.Fatalf("EB = %v, want positive", eb1)
	}
	if ratio := eb10 / eb1; ratio < 9.999 || ratio > 10.001 {
		t.Errorf("EB scaling wrong: %v %v (ratio %v)", eb1, eb10, ratio)
	}
}

func TestRandomInputsShape(t *testing.T) {
	m := minic.MustCompile("prof", profSrc)
	in := RandomInputs(m, rand.New(rand.NewSource(3)))
	data, ok := in["data"]
	if !ok || len(data) != 16 {
		t.Fatalf("inputs = %v", in)
	}
	for _, v := range data {
		if v < 0 || v >= 1<<15 {
			t.Errorf("input out of range: %d", v)
		}
	}
}

func TestCollectRejectsNonTerminating(t *testing.T) {
	m := ir.MustParse(`module spin
func void main() regs 1 {
entry:
  jmp entry
}
`)
	if _, err := Collect(m, Options{Runs: 1, MaxSteps: 1000}); err == nil {
		t.Errorf("Collect accepted a non-terminating program")
	}
}

// TestProfileCountsStableAcrossAdapter pins the exact counts Collect
// gathers for a fixed program and seed. The profiler rides on the
// emulator's legacy Trace/TraceRet callbacks, which are now adapted onto
// the Observer event stream — these numbers must not move when the
// adapter (or the event layer underneath it) changes.
func TestProfileCountsStableAcrossAdapter(t *testing.T) {
	m := minic.MustCompile("prof", profSrc)
	p, err := Collect(m, Options{Runs: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	mainF := m.FuncByName("main")
	stepF := m.FuncByName("step")

	if got := p.Invocations(mainF); got != 10 {
		t.Errorf("main invocations = %d, want 10", got)
	}
	if got := p.Invocations(stepF); got != 160 {
		t.Errorf("step invocations = %d, want 160", got)
	}
	// Exact per-block frequencies: the loop is input-independent (16
	// iterations per run), so every block count is fully determined.
	for _, want := range []struct {
		block string
		freq  int64
	}{
		{"entry", 10},
		{"for.head", 170}, // 17 header executions per run
		{"for.body", 160},
		{"for.latch", 160},
		{"for.end", 10},
	} {
		var blk *ir.Block
		for _, b := range mainF.Blocks {
			if b.Name == want.block {
				blk = b
			}
		}
		if blk == nil {
			t.Fatalf("main has no block %q", want.block)
		}
		if got := p.BlockFreq(mainF, blk); got != want.freq {
			t.Errorf("main.%s freq = %d, want %d", want.block, got, want.freq)
		}
	}
	// The loop back-edge (latch → header) count is exact too.
	var head, latch *ir.Block
	for _, b := range mainF.Blocks {
		switch b.Name {
		case "for.head":
			head = b
		case "for.latch":
			latch = b
		}
	}
	if got := p.EdgeFreq(mainF, ir.Edge{From: latch, To: head}); got != 160 {
		t.Errorf("back-edge freq = %d, want 160", got)
	}
}
