package transval

import (
	"fmt"
	"io"
	"sort"

	"schematic/internal/cfg"
	"schematic/internal/ir"
	"schematic/internal/opt"
)

// Coverage accounts for what a validation corpus actually exercises, so
// blind spots in the fuzz generator are visible instead of silent: IR
// opcodes, instruction kinds, CFG shape (loop nesting, call depth, array
// traffic), and which optimizer rewrite rules ever fired.
type Coverage struct {
	Programs int

	// Opcodes counts BinOp operators by name; Instrs counts instruction
	// kinds.
	Opcodes map[string]int
	Instrs  map[string]int

	// MaxLoopDepth and MaxCallDepth are the deepest loop nesting and call
	// chain seen; ArrayLoads/ArrayStores count indexed accesses.
	MaxLoopDepth int
	MaxCallDepth int
	ArrayLoads   int
	ArrayStores  int

	// Rules aggregates the optimizer's rewrite-rule counters across every
	// validated program.
	Rules map[string]int
}

// NewCoverage returns an empty accountant.
func NewCoverage() *Coverage {
	return &Coverage{
		Opcodes: map[string]int{},
		Instrs:  map[string]int{},
		Rules:   map[string]int{},
	}
}

// AddModule records the opcodes, instruction kinds, and CFG shape of one
// lowered module.
func (c *Coverage) AddModule(m *ir.Module) {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				c.Instrs[instrKind(in)]++
				switch x := in.(type) {
				case *ir.BinOp:
					c.Opcodes[x.Op.String()]++
				case *ir.Load:
					if x.HasIndex {
						c.ArrayLoads++
					}
				case *ir.Store:
					if x.HasIndex {
						c.ArrayStores++
					}
				}
			}
		}
		dom := cfg.Dominators(f)
		for _, l := range cfg.Loops(f, dom).All {
			if d := l.Depth(); d > c.MaxLoopDepth {
				c.MaxLoopDepth = d
			}
		}
	}
	if d := callDepth(m); d > c.MaxCallDepth {
		c.MaxCallDepth = d
	}
}

// AddStats folds one program's optimizer statistics into the rule
// counters.
func (c *Coverage) AddStats(st *opt.Stats) {
	for name, n := range st.Counters() {
		c.Rules[name] += n
	}
}

func instrKind(in ir.Instr) string {
	switch in.(type) {
	case *ir.Const:
		return "const"
	case *ir.BinOp:
		return "binop"
	case *ir.Load:
		return "load"
	case *ir.Store:
		return "store"
	case *ir.Call:
		return "call"
	case *ir.Out:
		return "out"
	case *ir.Br:
		return "br"
	case *ir.Jmp:
		return "jmp"
	case *ir.Ret:
		return "ret"
	case *ir.Checkpoint:
		return "checkpoint"
	case *ir.LoopBound:
		return "loopbound"
	default:
		return fmt.Sprintf("%T", in)
	}
}

// callDepth returns the longest call chain in the module, in frames
// (main alone = 1). ir.Verify rejects recursion, so the call graph is a
// DAG; the visiting guard keeps unverified input from looping.
func callDepth(m *ir.Module) int {
	memo := map[*ir.Func]int{}
	visiting := map[*ir.Func]bool{}
	var depth func(f *ir.Func) int
	depth = func(f *ir.Func) int {
		if d, ok := memo[f]; ok {
			return d
		}
		if visiting[f] {
			return 0
		}
		visiting[f] = true
		best := 0
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if call, ok := in.(*ir.Call); ok {
					if d := depth(call.Callee); d > best {
						best = d
					}
				}
			}
		}
		visiting[f] = false
		memo[f] = 1 + best
		return memo[f]
	}
	main := m.FuncByName("main")
	if main == nil {
		return 0
	}
	return depth(main)
}

// OpcodeCoverage returns how many of the IR's operators the corpus
// exercised, out of the full opcode universe.
func (c *Coverage) OpcodeCoverage() (seen, total int) {
	for _, op := range ir.Ops() {
		total++
		if c.Opcodes[op.String()] > 0 {
			seen++
		}
	}
	return seen, total
}

// MissingOpcodes lists operators no validated program ever executed —
// the generator's blind spots.
func (c *Coverage) MissingOpcodes() []string {
	var out []string
	for _, op := range ir.Ops() {
		if c.Opcodes[op.String()] == 0 {
			out = append(out, op.String())
		}
	}
	return out
}

// MissingRules lists optimizer rewrite rules that never fired across the
// corpus.
func (c *Coverage) MissingRules() []string {
	var out []string
	for _, name := range opt.RuleNames() {
		if c.Rules[name] == 0 {
			out = append(out, name)
		}
	}
	return out
}

// WriteReport renders the accountant's findings.
func (c *Coverage) WriteReport(w io.Writer) {
	seen, total := c.OpcodeCoverage()
	fmt.Fprintf(w, "coverage: %d programs validated\n", c.Programs)
	fmt.Fprintf(w, "  opcodes: %d/%d exercised", seen, total)
	if miss := c.MissingOpcodes(); len(miss) > 0 {
		fmt.Fprintf(w, " (missing: %v)", miss)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  instruction kinds: %s\n", sortedCounts(c.Instrs))
	fmt.Fprintf(w, "  cfg shape: max loop depth %d, max call depth %d, array loads %d, array stores %d\n",
		c.MaxLoopDepth, c.MaxCallDepth, c.ArrayLoads, c.ArrayStores)
	fired := 0
	for _, name := range opt.RuleNames() {
		if c.Rules[name] > 0 {
			fired++
		}
	}
	fmt.Fprintf(w, "  rewrite rules: %d/%d fired", fired, len(opt.RuleNames()))
	if miss := c.MissingRules(); len(miss) > 0 {
		fmt.Fprintf(w, " (never fired: %v)", miss)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  rule firings: %s\n", sortedCounts(c.Rules))
}

func sortedCounts(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s %d", k, m[k])
	}
	if s == "" {
		return "(none)"
	}
	return s
}
