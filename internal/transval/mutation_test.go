package transval_test

import (
	"bytes"
	"testing"

	"schematic/internal/opt"
	"schematic/internal/transval"
)

// TestSeededMiscompileIsBisected is the mutation check for the validator
// itself: with a deliberately wrong rewrite seeded into dce (the
// test-only SabotageDropStore flag makes it silently drop one store per
// function), the validator must notice, bisect the divergence to that
// exact pass, shrink the counterexample, and emit a repro that replays
// deterministically.
func TestSeededMiscompileIsBisected(t *testing.T) {
	opt.SabotageDropStore = true
	defer func() { opt.SabotageDropStore = false }()

	opts := transval.Options{SkipPlacement: true}
	var found *transval.Finding
	var clean transval.Case
	n := 40
	if testing.Short() {
		n = 20
	}
	for _, cs := range transval.FuzzCases(7, n, 500) {
		f, err := transval.Validate(cs, opts)
		if err != nil {
			if _, skip := err.(*transval.SkipError); skip {
				continue
			}
			t.Fatalf("%s: %v", cs.Name, err)
		}
		if f == nil {
			continue
		}
		if f.Stage != "opt:dce" {
			t.Fatalf("%s: sabotage in dce was bisected to %s (detail: %s)", cs.Name, f.Stage, f.Detail)
		}
		if found == nil {
			found = f
			clean = cs
		}
	}
	if found == nil {
		t.Fatal("no fuzz case exposed the seeded dce miscompile; sabotage hook dead?")
	}

	// Shrinking must not have grown the counterexample and must keep it
	// pinned to the same pass.
	if len(found.Case.Source) > len(clean.Source) {
		t.Fatalf("shrunk source (%d bytes) larger than original (%d bytes)",
			len(found.Case.Source), len(clean.Source))
	}

	// The NDJSON repro must round-trip and replay to the same stage.
	var buf bytes.Buffer
	if err := transval.WriteFindings(&buf, []transval.Finding{*found}); err != nil {
		t.Fatal(err)
	}
	back, err := transval.ReadFindings(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("repro stream has %d findings, want 1", len(back))
	}
	for i := 0; i < 2; i++ {
		got, err := transval.Replay(back[0], opts)
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		if got.Stage != found.Stage || got.Want != found.Want || got.Got != found.Got {
			t.Fatalf("replay %d not deterministic: got {%s %s %s}, want {%s %s %s}",
				i, got.Stage, got.Want, got.Got, found.Stage, found.Want, found.Got)
		}
	}

	// With the sabotage off, the same case must validate cleanly — the
	// finding was the mutation's fault, not the pipeline's.
	opt.SabotageDropStore = false
	f, err := transval.Validate(found.Case, opts)
	if err != nil {
		t.Fatal(err)
	}
	if f != nil {
		t.Fatalf("case still diverges at %s without sabotage", f.Stage)
	}
}
