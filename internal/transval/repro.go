package transval

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteFindings serializes findings as NDJSON, one repro per line. The
// encoding is deterministic: struct field order is fixed and no maps are
// involved.
func WriteFindings(w io.Writer, findings []Finding) error {
	enc := json.NewEncoder(w)
	for i := range findings {
		if err := enc.Encode(&findings[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadFindings parses an NDJSON repro stream, skipping blank lines.
func ReadFindings(r io.Reader) ([]Finding, error) {
	var out []Finding
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24) // sources can be long lines
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var f Finding
		if err := json.Unmarshal(b, &f); err != nil {
			return nil, fmt.Errorf("transval: repro line %d: %w", line, err)
		}
		out = append(out, f)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Replay re-validates a finding's case from its serialized form
// (verifying fuzz provenance) and returns the freshly found divergence.
// A deterministic repro reproduces the same offending stage; Replay
// errors when the pipeline validates cleanly or diverges elsewhere.
func Replay(f Finding, opts Options) (*Finding, error) {
	opts = opts.withDefaults()
	opts.NoShrink = true
	got, err := validate(f.Case, opts)
	if err != nil {
		return nil, err
	}
	if got == nil {
		return nil, fmt.Errorf("transval: replay of %s: pipeline validates cleanly (stage %s expected)", f.Case.Name, f.Stage)
	}
	if got.Stage != f.Stage {
		return got, fmt.Errorf("transval: replay of %s: diverged at %s, repro recorded %s", f.Case.Name, got.Stage, f.Stage)
	}
	return got, nil
}
