// Package transval is the translation-validation layer of the toolchain:
// it checks, program by program, that every stage of the compilation
// pipeline preserves observable behaviour.
//
// The repository has two independent executable semantics for MiniC. The
// reference oracle is the AST interpreter (minic.Interpret), which walks
// the typed syntax tree directly and shares only ir.EvalOp with the rest
// of the stack. The second is the compilation path: lowering to IR, the
// optimizer's rewrite passes, a checkpoint-placement technique, and the
// IR emulator under continuous power. Validate runs a program through
// both and demands identical observables (the print stream, or an
// identical runtime trap) after *every individual stage*:
//
//	AST interpreter  ⟂  lowered IR  ⟂  after each opt pass  ⟂  after placement
//
// Because each stage is checked eagerly, a divergence is bisected to the
// first offending pass by construction. Counterexamples with fuzz
// provenance are shrunk by regenerating the program from its seed under
// tightened generator options (the crashtest approach), and serialized as
// deterministic NDJSON repros that Replay re-executes.
//
// In the oracle hierarchy, transval sits below crashtest: transval proves
// the pipeline correct under continuous power; crashtest then hunts
// crash-consistency bugs in the placements under adversarial power
// schedules. A transval mismatch invalidates every downstream result, so
// it runs first (schematicc -validate, cmd/transval, make ci).
package transval

import (
	"errors"
	"fmt"
	"math/rand"

	"schematic/internal/baselines"
	"schematic/internal/bench"
	"schematic/internal/cfg"
	"schematic/internal/emulator"
	"schematic/internal/energy"
	"schematic/internal/fuzzgen"
	"schematic/internal/ir"
	"schematic/internal/minic"
	"schematic/internal/opt"
	"schematic/internal/trace"
)

// Case is one program to validate, with the knobs that make the whole
// pipeline reproducible.
type Case struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	// Fuzz, when set, records how Source was generated; replay
	// regenerates from the seed and refuses a mismatching Source.
	Fuzz      *fuzzgen.Program `json:"fuzz,omitempty"`
	InputSeed int64            `json:"input_seed"`
}

// Finding is one confirmed, shrunk, replayable miscompile: the first
// pipeline stage whose observable behaviour diverges from the AST
// reference interpreter.
type Finding struct {
	Case   Case   `json:"case"`
	Stage  string `json:"stage"` // "lower", "opt:<pass>", or "place:<technique>"
	Detail string `json:"detail"`
	Want   string `json:"want"` // oracle observable
	Got    string `json:"got"`  // offending stage's observable
}

// Options tunes validation. Zero values select the defaults documented on
// each field.
type Options struct {
	Model *energy.Model // nil = MSP430FR5969

	// MaxSteps bounds the reference runs (interpreter nodes and emulator
	// instructions; 0 = 30M). Stages after the reference get 4× the
	// reference step count plus slack, so a pass that destroys
	// termination is reported instead of spinning.
	MaxSteps int64

	// TBPF derives the placement budget via the profile (0 = 10_000).
	// VMSize is SVM for transformed runs (0 = 1 MiB, so every technique
	// supports every program — validation is about semantics, not fit).
	// ProfileRuns sizes the profiling pass (0 = 8).
	TBPF        int64
	VMSize      int
	ProfileRuns int

	// Techniques are the placement stages to validate, by display name
	// (nil = all five of the evaluation).
	Techniques []string

	// SkipPlacement validates only lowering and the optimizer.
	SkipPlacement bool

	// NoShrink skips counterexample minimization; ShrinkBudget bounds the
	// re-validations shrinking may spend (0 = 24).
	NoShrink     bool
	ShrinkBudget int

	// Coverage, when non-nil, accumulates what each validated program
	// exercised (opcodes, CFG shape, rewrite-rule firings).
	Coverage *Coverage
}

func (o Options) withDefaults() Options {
	if o.Model == nil {
		o.Model = energy.MSP430FR5969()
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 30_000_000
	}
	if o.TBPF == 0 {
		o.TBPF = 10_000
	}
	if o.VMSize == 0 {
		o.VMSize = 1 << 20
	}
	if o.ProfileRuns == 0 {
		o.ProfileRuns = 8
	}
	if o.ShrinkBudget == 0 {
		o.ShrinkBudget = 24
	}
	if o.Techniques == nil {
		for _, t := range bench.Techniques() {
			o.Techniques = append(o.Techniques, t.Name())
		}
	}
	return o
}

// SkipError marks a case validation cannot classify: the program does not
// terminate within the step budget under either semantics, or a
// technique declines it. Skips are not findings.
type SkipError struct{ Reason string }

func (e *SkipError) Error() string { return "transval: case skipped: " + e.Reason }

// observable is what a run exposes to comparison: a runtime trap, an
// abnormal verdict, or the completed output stream. Trap messages differ
// between the interpreter and the emulator, so traps compare equal by
// kind only.
type observable struct {
	trapped bool
	verdict string // non-empty for abnormal stage verdicts (out-of-steps, vm-overflow)
	detail  string
	output  []int64
}

func (o observable) String() string {
	if o.trapped {
		return fmt.Sprintf("trap (%s)", o.detail)
	}
	if o.verdict != "" {
		return fmt.Sprintf("verdict %s", o.verdict)
	}
	return fmt.Sprintf("output %v", o.output)
}

func (o observable) equal(other observable) bool {
	if o.trapped != other.trapped || o.verdict != other.verdict {
		return false
	}
	if o.trapped {
		return true
	}
	if len(o.output) != len(other.output) {
		return false
	}
	for i := range o.output {
		if o.output[i] != other.output[i] {
			return false
		}
	}
	return true
}

// Validate runs the case through every pipeline stage and returns the
// first divergence from the AST reference interpreter (nil when the whole
// pipeline validates). Errors marked with SkipError denote ineligible
// cases, anything else a broken case (bad source, mismatched fuzz seed).
func Validate(cs Case, opts Options) (*Finding, error) {
	opts = opts.withDefaults()
	f, err := validate(cs, opts)
	if err != nil || f == nil {
		return f, err
	}
	if !opts.NoShrink {
		f = shrink(f, opts)
	}
	return f, nil
}

func validate(cs Case, opts Options) (*Finding, error) {
	cs, file, m, err := frontend(cs)
	if err != nil {
		return nil, err
	}
	for _, fn := range m.Funcs {
		if err := cfg.CheckReducible(fn); err != nil {
			return nil, fmt.Errorf("transval: case %s: %w", cs.Name, err)
		}
	}
	inputs := trace.RandomInputs(m, rand.New(rand.NewSource(cs.InputSeed)))

	// Reference semantics: the AST interpreter.
	ref, err := interpObservable(file, inputs, opts.MaxSteps)
	if err != nil {
		return nil, err
	}
	if opts.Coverage != nil {
		opts.Coverage.AddModule(m)
		opts.Coverage.Programs++
	}

	finding := func(stage string, got observable) *Finding {
		return &Finding{
			Case:   cs,
			Stage:  stage,
			Detail: fmt.Sprintf("%s diverges from the AST interpreter", stage),
			Want:   ref.String(),
			Got:    got.String(),
		}
	}

	// Stage 1: lowering. The emulator on the freshly lowered module must
	// agree with the interpreter.
	lowered, refSteps, err := runStage(m, inputs, opts, 0, opts.MaxSteps)
	if err != nil {
		return nil, err
	}
	if !ref.equal(lowered) {
		return finding("lower", lowered), nil
	}
	// Later stages may legitimately execute more instructions (hoisted
	// loads, checkpoint work); 4× the lowered run plus slack separates
	// that from genuine non-termination.
	stageMax := opts.MaxSteps
	if !ref.trapped {
		stageMax = 4*refSteps + 100_000
	}

	// Stage 2: the optimizer, one pass application at a time. Checking
	// eagerly after every application bisects a divergence to the first
	// offending pass by construction.
	work := ir.Clone(m)
	st := &opt.Stats{}
	passes := opt.Passes()
	for round := 0; round < 32; round++ {
		any := false
		for _, p := range passes {
			if !p.Run(work, st) {
				continue
			}
			any = true
			if err := ir.Verify(work); err != nil {
				return &Finding{
					Case:   cs,
					Stage:  "opt:" + p.Name,
					Detail: fmt.Sprintf("pass broke IR structural invariants: %v", err),
					Want:   ref.String(),
					Got:    "invalid IR",
				}, nil
			}
			got, _, err := runStage(work, inputs, opts, 0, stageMax)
			if err != nil {
				return nil, err
			}
			if !ref.equal(got) {
				return finding("opt:"+p.Name, got), nil
			}
		}
		if !any {
			break
		}
	}
	if opts.Coverage != nil {
		opts.Coverage.AddStats(st)
	}

	// Stage 3: checkpoint placement, one technique at a time, run under
	// continuous power (checkpoints still execute their save/restore
	// work, so a placement that corrupts state is visible here even
	// before crashtest injects failures). Trapping programs stop here:
	// profiling them is impossible.
	if opts.SkipPlacement || ref.trapped {
		return nil, nil
	}
	prof, err := trace.Collect(work, trace.Options{Runs: opts.ProfileRuns, Seed: cs.InputSeed, Model: opts.Model})
	if err != nil {
		// Other profiling inputs may trap a program our fixed input does
		// not; placement cannot be validated for it, lowering and the
		// optimizer already were.
		return nil, nil
	}
	eb := prof.EBForTBPF(opts.TBPF)
	for _, name := range opts.Techniques {
		tech, err := techniqueByName(name)
		if err != nil {
			return nil, err
		}
		placed := ir.Clone(work)
		if !tech.SupportsVM(placed, opts.VMSize) {
			continue
		}
		if err := tech.Apply(placed, baselines.Params{
			Model: opts.Model, Budget: eb, VMSize: opts.VMSize, Profile: prof,
		}); err != nil {
			// A technique may find no feasible placement for this program
			// and budget; that is a declined case, not a miscompile.
			continue
		}
		got, _, err := runStage(placed, inputs, opts, opts.VMSize, stageMax)
		if err != nil {
			return nil, err
		}
		if !ref.equal(got) {
			return finding("place:"+name, got), nil
		}
	}
	return nil, nil
}

// frontend normalizes the case (regenerating fuzz sources and verifying
// provenance) and runs the MiniC front end, returning both the checked
// AST (for the interpreter) and the lowered, verified module.
func frontend(cs Case) (Case, *minic.File, *ir.Module, error) {
	if cs.Fuzz != nil {
		prog, ok := cs.Fuzz.Regenerate()
		if !ok {
			return cs, nil, nil, fmt.Errorf("transval: case %s: stored source does not match fuzz seed %d", cs.Name, cs.Fuzz.Seed)
		}
		if cs.Source == "" {
			cs.Source = prog.Source
		}
	}
	if cs.Source == "" {
		return cs, nil, nil, fmt.Errorf("transval: case %s: no source", cs.Name)
	}
	file, err := minic.ParseFile(cs.Name, cs.Source)
	if err != nil {
		return cs, nil, nil, fmt.Errorf("transval: case %s: %w", cs.Name, err)
	}
	if err := minic.Check(file); err != nil {
		return cs, nil, nil, fmt.Errorf("transval: case %s: %w", cs.Name, err)
	}
	m, err := minic.Lower(file)
	if err != nil {
		return cs, nil, nil, fmt.Errorf("transval: case %s: %w", cs.Name, err)
	}
	if err := ir.Verify(m); err != nil {
		return cs, nil, nil, fmt.Errorf("transval: case %s: lowering produced invalid IR: %w", cs.Name, err)
	}
	return cs, file, m, nil
}

// interpObservable runs the reference interpreter and classifies its
// outcome: output, trap, or (as a skip) budget exhaustion.
func interpObservable(file *minic.File, inputs map[string][]int64, maxSteps int64) (observable, error) {
	res, err := minic.Interpret(file, inputs, maxSteps)
	if err == minic.ErrInterpSteps {
		return observable{}, &SkipError{Reason: "reference interpreter exceeded its step budget (non-terminating?)"}
	}
	if err != nil {
		return observable{trapped: true, detail: err.Error()}, nil
	}
	return observable{output: res.Output}, nil
}

// runStage executes a module stage under the continuous-power emulator
// and classifies its observable. Verdicts other than completion become a
// trap-style observable with the verdict named, except an out-of-steps
// reference run, which is a skip.
func runStage(m *ir.Module, inputs map[string][]int64, opts Options, vmSize int, maxSteps int64) (observable, int64, error) {
	res, err := emulator.Run(m, emulator.Config{
		Model:    opts.Model,
		Inputs:   inputs,
		VMSize:   vmSize,
		MaxSteps: maxSteps,
	})
	if err != nil {
		// A config rejection is a harness bug, not a program trap —
		// folding it into the trap observable would let a misconfigured
		// validation run masquerade as (or mask) a miscompile.
		if errors.Is(err, emulator.ErrInvalidConfig) {
			return observable{}, 0, fmt.Errorf("transval: stage emulator config: %w", err)
		}
		return observable{trapped: true, detail: err.Error()}, 0, nil
	}
	switch res.Verdict {
	case emulator.Completed:
		return observable{output: res.Output}, res.Steps, nil
	case emulator.OutOfSteps:
		if maxSteps >= opts.MaxSteps {
			// The reference bound itself ran out: non-termination, skip.
			return observable{}, 0, &SkipError{Reason: "emulator exceeded the reference step budget (non-terminating?)"}
		}
		return observable{verdict: "out-of-steps (stage exceeds 4x the reference run)"}, res.Steps, nil
	default:
		// Continuous power cannot get stuck; VM overflow or any other
		// verdict is an observable defect of the stage.
		return observable{verdict: res.Verdict.String()}, res.Steps, nil
	}
}

// techniqueByName resolves one of the evaluation's techniques by display
// name.
func techniqueByName(name string) (baselines.Technique, error) {
	for _, t := range bench.Techniques() {
		if t.Name() == name {
			return t, nil
		}
	}
	return nil, fmt.Errorf("transval: unknown technique %q", name)
}

// shrink minimizes a fuzz-generated counterexample by regenerating the
// program from its seed under progressively tighter generator options,
// keeping any smaller program that still diverges at the same stage.
func shrink(f *Finding, opts Options) *Finding {
	if f.Case.Fuzz == nil {
		return f
	}
	quick := opts
	quick.NoShrink = true
	quick.Coverage = nil
	budget := opts.ShrinkBudget
	best := f
	for pass := 0; pass < 8; pass++ {
		improved := false
		for _, next := range reductions(best.Case.Fuzz.Options) {
			if budget <= 0 {
				return best
			}
			prog := fuzzgen.FromSeed(best.Case.Fuzz.Seed, next)
			if len(prog.Source) >= len(best.Case.Source) {
				continue
			}
			budget--
			cs := best.Case
			cs.Fuzz = &prog
			cs.Source = prog.Source
			got, err := validate(cs, quick)
			if err != nil || got == nil || got.Stage != best.Stage {
				continue
			}
			best = got
			improved = true
			break
		}
		if !improved {
			break
		}
	}
	return best
}

// reductions yields the one-step tightenings of generator options.
func reductions(o fuzzgen.Options) []fuzzgen.Options {
	var out []fuzzgen.Options
	if o.MaxFuncs > 0 {
		r := o
		r.MaxFuncs--
		out = append(out, r)
	}
	if o.MaxStmts > 1 {
		r := o
		r.MaxStmts--
		out = append(out, r)
	}
	if o.MaxDepth > 1 {
		r := o
		r.MaxDepth--
		out = append(out, r)
	}
	if o.MaxLoopIter > 1 {
		r := o
		r.MaxLoopIter /= 2
		out = append(out, r)
	}
	return out
}

// ProbeCases are small directed programs covering constructs the fuzz
// generator never emits — today only unary minus (OpNeg) — so the opcode
// accounting can reach the full universe instead of stopping at the
// generator's blind spots.
func ProbeCases(inputSeed int64) []Case {
	return []Case{{
		Name: "probe-unary",
		Source: `input int v[2];

func void main() {
	int x;
	x = v[0];
	print(-x);
	print(~x);
	print(!x);
	print(-(v[1] % 5));
}
`,
		InputSeed: inputSeed,
	}}
}

// FuzzCases derives a reproducible stream of fuzz-generated validation
// cases from a base seed. Every third program carries the
// placement-adversarial shapes (deep WAR chains, tiny hot loops).
func FuzzCases(baseSeed int64, n int, inputSeed int64) []Case {
	var out []Case
	for i, prog := range fuzzgen.MixedCorpus(baseSeed, n) {
		prog := prog
		out = append(out, Case{
			Name:      fmt.Sprintf("fuzz-%d", i),
			Source:    prog.Source,
			Fuzz:      &prog,
			InputSeed: inputSeed + int64(i),
		})
	}
	return out
}
