package transval_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"schematic/internal/bench"
	"schematic/internal/emulator"
	"schematic/internal/transval"
)

func TestValidateBenchmarks(t *testing.T) {
	benches, err := bench.All()
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	if testing.Short() {
		names["crc"] = true
		names["randmath"] = true
	}
	cov := transval.NewCoverage()
	for _, b := range benches {
		if len(names) > 0 && !names[b.Name] {
			continue
		}
		b := b
		cs := transval.Case{Name: b.Name, Source: b.Source, InputSeed: 1}
		f, err := transval.Validate(cs, transval.Options{Coverage: cov})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if f != nil {
			t.Fatalf("%s: pipeline diverges at %s: want %s, got %s", b.Name, f.Stage, f.Want, f.Got)
		}
	}
	if cov.Programs == 0 {
		t.Fatal("coverage accountant saw no programs")
	}
}

func TestValidateFuzzStream(t *testing.T) {
	n := 24
	if testing.Short() {
		n = 6
	}
	cov := transval.NewCoverage()
	opts := transval.Options{Coverage: cov}
	skips := 0
	cases := append(transval.FuzzCases(1, n, 1000), transval.ProbeCases(1)...)
	for _, cs := range cases {
		f, err := transval.Validate(cs, opts)
		if err != nil {
			if _, skip := err.(*transval.SkipError); skip {
				skips++
				continue
			}
			t.Fatalf("%s: %v", cs.Name, err)
		}
		if f != nil {
			t.Fatalf("%s: pipeline diverges at %s: want %s, got %s\nsource:\n%s",
				cs.Name, f.Stage, f.Want, f.Got, cs.Source)
		}
	}
	if skips == len(cases) {
		t.Fatal("every fuzz case skipped")
	}
	// The fuzz stream plus the directed probes must reach the whole
	// opcode universe; a regression here means the generator or the
	// probes lost coverage.
	if !testing.Short() {
		if miss := cov.MissingOpcodes(); len(miss) > 0 {
			t.Errorf("opcodes never exercised: %v", miss)
		}
	}
	var buf bytes.Buffer
	cov.WriteReport(&buf)
	rep := buf.String()
	for _, want := range []string{"opcodes:", "rewrite rules:", "cfg shape:"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("coverage report missing %q:\n%s", want, rep)
		}
	}
}

func TestValidateCatchesTrapParity(t *testing.T) {
	// A program that traps must trap in every stage; the validator
	// classifies it as validated (trap = trap), not as a mismatch.
	cs := transval.Case{
		Name: "divzero",
		Source: `
func void main() {
	int a;
	a = 0;
	print(3 / a);
}
`,
		InputSeed: 1,
	}
	f, err := transval.Validate(cs, transval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f != nil {
		t.Fatalf("trap-parity case reported divergence at %s", f.Stage)
	}
}

func TestFindingsRoundtrip(t *testing.T) {
	fs := []transval.Finding{
		{
			Case:   transval.Case{Name: "x", Source: "func void main() {\n}\n", InputSeed: 3},
			Stage:  "opt:dce",
			Detail: "opt:dce diverges from the AST interpreter",
			Want:   "output [1]",
			Got:    "output []",
		},
	}
	var buf bytes.Buffer
	if err := transval.WriteFindings(&buf, fs); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	got, err := transval.ReadFindings(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != fs[0] {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	var again bytes.Buffer
	if err := transval.WriteFindings(&again, got); err != nil {
		t.Fatal(err)
	}
	if again.String() != first {
		t.Fatalf("NDJSON encoding not deterministic:\n%s\nvs\n%s", first, again.String())
	}
}

// TestValidateSurfacesConfigError: a harness misconfiguration (here a
// negative VM size) must come back as an error unwrapping to
// emulator.ErrInvalidConfig — not be folded into the trap observable,
// where it would masquerade as a program divergence or silently agree
// with a trapping reference.
func TestValidateSurfacesConfigError(t *testing.T) {
	cs := transval.ProbeCases(1)[0]
	_, err := transval.Validate(cs, transval.Options{VMSize: -5})
	if !errors.Is(err, emulator.ErrInvalidConfig) {
		t.Fatalf("Validate with VMSize=-5: got %v, want ErrInvalidConfig", err)
	}
}
