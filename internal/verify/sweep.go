package verify

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"schematic/internal/bench"
	"schematic/internal/crashtest"
)

// SweepResult is one case's outcome in a verification sweep.
type SweepResult struct {
	Case    crashtest.Case
	Report  *Report // nil when the case was skipped or errored
	Skipped string  // non-empty when the case was skipped (with reason)
	Err     error   // infrastructure failure (compile, oracle, ...)
	Elapsed time.Duration
}

// Sweeper verifies a case list on a worker pool, mirroring
// crashtest.Hunter: per-case deadlines, an overall wall-clock budget,
// and deterministic result order.
type Sweeper struct {
	Opts Options
	// Jobs is the worker count; 0 selects NumCPU.
	Jobs int
	// CaseTimeout bounds each case's search; expiry truncates that case
	// to a Bounded report rather than skipping it. 0 = no per-case bound.
	CaseTimeout time.Duration
	// Budget bounds the whole sweep; cases that would start after it
	// expires are skipped. 0 = no budget.
	Budget time.Duration
	// Log, when non-nil, receives one line per finished case, and — when
	// Opts.Progress is unset — periodic state-count/frontier/dedup
	// progress lines for long searches.
	Log io.Writer
}

// Run verifies every case and returns the results in case order.
func (s *Sweeper) Run(ctx context.Context, cases []crashtest.Case) []SweepResult {
	results := make([]SweepResult, len(cases))
	var deadline time.Time
	if s.Budget > 0 {
		deadline = time.Now().Add(s.Budget)
	}
	var logMu sync.Mutex
	logf := func(format string, args ...any) {
		if s.Log == nil {
			return
		}
		logMu.Lock()
		fmt.Fprintf(s.Log, format+"\n", args...)
		logMu.Unlock()
	}
	_ = bench.ParallelFor(s.Jobs, len(cases), func(i int) error {
		res := SweepResult{Case: cases[i]}
		start := time.Now()
		if ctx.Err() != nil {
			res.Skipped = "cancelled"
			results[i] = res
			return nil
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.Skipped = "wall-clock budget exhausted"
			results[i] = res
			return nil
		}
		opts := s.Opts
		if s.CaseTimeout > 0 {
			d := time.Now().Add(s.CaseTimeout)
			if opts.Deadline.IsZero() || d.Before(opts.Deadline) {
				opts.Deadline = d
			}
		}
		if !deadline.IsZero() && (opts.Deadline.IsZero() || deadline.Before(opts.Deadline)) {
			opts.Deadline = deadline
		}
		if opts.Progress == nil && s.Log != nil {
			id := fmt.Sprintf("%s/%s", cases[i].Name, cases[i].Technique)
			opts.ProgressEvery = 5000
			opts.Progress = func(p Progress) {
				logf("...   %-28s %d states (%d frontier, depth %d), %d edges, %.1f%% dedup",
					id, p.States, p.Frontier, p.Depth, p.Edges, dedupPct(p.Dedup, p.Edges))
			}
		}
		rep, err := Run(ctx, cases[i], opts)
		res.Elapsed = time.Since(start)
		switch {
		case crashtest.IsSkip(err):
			res.Skipped = err.Error()
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			res.Skipped = "cancelled: " + err.Error()
		case err != nil:
			res.Err = err
		default:
			res.Report = rep
		}
		results[i] = res
		logf("%s", res.line())
		return nil
	})
	return results
}

func (r *SweepResult) line() string {
	id := fmt.Sprintf("%s/%s", r.Case.Name, r.Case.Technique)
	el := r.Elapsed.Round(time.Millisecond)
	switch {
	case r.Err != nil:
		return fmt.Sprintf("ERROR %-28s %v", id, r.Err)
	case r.Skipped != "":
		return fmt.Sprintf("skip  %-28s %s", id, r.Skipped)
	case r.Report.Verdict == Counterexample:
		f := r.Report.Finding
		return fmt.Sprintf("FAIL  %-28s %s via %s after %d states in %v",
			id, f.Class, f.Schedule, r.Report.States, el)
	case r.Report.Verdict == Bounded:
		return fmt.Sprintf("bound %-28s %s at %d states / %d edges (depth %d) in %v",
			id, r.Report.Bound, r.Report.States, r.Report.Edges, r.Report.MaxDepth, el)
	case r.Report.WaitContract:
		return fmt.Sprintf("ok    %-28s verified (wait contract) in %v", id, el)
	default:
		return fmt.Sprintf("ok    %-28s verified: %d states, %d edges, %.1f%% dedup, depth %d in %v",
			id, r.Report.States, r.Report.Edges,
			dedupPct(r.Report.DedupHits, r.Report.Edges), r.Report.MaxDepth, el)
	}
}

func dedupPct(hits, edges int64) float64 {
	if edges == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(edges)
}

// SweepSummary aggregates a verification sweep.
type SweepSummary struct {
	Cases           int
	Verified        int
	Bounded         int
	Counterexamples int
	Skipped         int
	Errors          int
}

// Summarize folds sweep results into counts.
func Summarize(results []SweepResult) SweepSummary {
	s := SweepSummary{Cases: len(results)}
	for i := range results {
		r := &results[i]
		switch {
		case r.Err != nil:
			s.Errors++
		case r.Skipped != "":
			s.Skipped++
		case r.Report.Verdict == Counterexample:
			s.Counterexamples++
		case r.Report.Verdict == Bounded:
			s.Bounded++
		default:
			s.Verified++
		}
	}
	return s
}

func (s SweepSummary) String() string {
	return fmt.Sprintf("%d cases: %d verified, %d counterexamples, %d bounded, %d skipped, %d errors",
		s.Cases, s.Verified, s.Counterexamples, s.Bounded, s.Skipped, s.Errors)
}

// Findings extracts the counterexample findings in case order.
func Findings(results []SweepResult) []crashtest.Finding {
	var out []crashtest.Finding
	for i := range results {
		if r := &results[i]; r.Report != nil && r.Report.Finding != nil {
			out = append(out, *r.Report.Finding)
		}
	}
	return out
}
