// Package verify upgrades crash hunting from sampling to bounded model
// checking: it explores the crash-recovery state graph of a placed
// program exhaustively instead of probing it at sampled points.
//
// A node of the graph is the persistent state that survives a power
// failure — NVM contents, conditional-checkpoint counters, the
// committed output prefix, and the committed snapshot (or cold-start) —
// canonically hashed into a visited set (DiVM-style hash compaction) so
// each distinct resume state is explored once. An edge is "resume from
// the node, run under exhaustion physics, and kill the supply at one
// schedulable injection point" — instruction boundaries and the
// before/mid (torn)/after phases of every checkpoint save. Because an
// adversarial power schedule is exactly a sequence of such injections,
// and everything between injections is deterministic physics, a BFS
// over this graph covers every power-failure interleaving: if every
// reachable node's injection-free run completes with oracle-equal
// output, no schedule can produce a violation, and the verdict is
// Verified. Otherwise the path of injection points leading to the
// offending node replays as one continuous schedule and feeds the
// existing crashtest shrinking + NDJSON repro machinery.
package verify

import (
	"context"
	"errors"
	"fmt"
	"time"

	"schematic/internal/crashtest"
	"schematic/internal/emulator"
	"schematic/internal/energy"
)

// Verdict is the outcome of a verification run.
type Verdict string

const (
	// Verified: the reachable state space was exhausted with no
	// violation — every power-failure interleaving of this program,
	// input, and capacitor budget is safe (up to hash-compaction
	// collision odds; see TESTING.md).
	Verified Verdict = "verified"
	// Counterexample: a reachable persistent state misbehaves; the
	// Finding carries the shrunk, replayable injection trace.
	Counterexample Verdict = "counterexample"
	// Bounded: a depth, state, or deadline bound truncated the search
	// before the state space was exhausted; no violation was found in
	// the explored portion, but nothing is verified.
	Bounded Verdict = "bounded"
)

// Options tunes a verification. Zero values select the documented
// defaults.
type Options struct {
	Model *energy.Model // nil = MSP430FR5969

	// MaxDepth bounds the number of chained injections (graph depth
	// from the cold root). 0 = 64.
	MaxDepth int
	// MaxStates bounds the distinct persistent states enqueued. 0 =
	// 200_000.
	MaxStates int
	// MaxStepsFactor caps every resumed exploration run at
	// factor×root-baseline steps plus slack (crashtest's cap). 0 = 24.
	MaxStepsFactor int64

	// NoShrink / ShrinkBudget control counterexample minimization,
	// exactly as in crashtest.Options.
	NoShrink     bool
	ShrinkBudget int

	// AssumeAnytime explores wait-style placements too instead of
	// verifying their no-failure contract (see crashtest.Options).
	AssumeAnytime bool

	// Deadline, when non-zero, truncates the search when passed (the
	// report comes back Bounded).
	Deadline time.Time

	// Progress, when non-nil, receives periodic search statistics.
	Progress func(Progress)
	// ProgressEvery is the number of explored states between Progress
	// calls. 0 = 100.
	ProgressEvery int
}

// Progress is a periodic snapshot of the search.
type Progress struct {
	States   int   // distinct persistent states discovered
	Explored int   // states whose outgoing run has been executed
	Frontier int   // states discovered but not yet explored
	Edges    int64 // injection points examined (failure transitions)
	Dedup    int64 // transitions that landed in an already-visited state
	Depth    int   // depth of the state currently being explored
}

// Report is the result of a verification run.
type Report struct {
	Verdict Verdict `json:"verdict"`
	// States is the number of distinct persistent states discovered
	// (including the cold root); Edges the number of injection points
	// examined, each a possible failure transition; DedupHits the
	// transitions whose target state had already been visited.
	States    int   `json:"states"`
	Edges     int64 `json:"edges"`
	DedupHits int64 `json:"dedup_hits"`
	// MaxDepth is the deepest injection chain explored.
	MaxDepth int `json:"max_depth"`
	// WaitContract is set when the placement is wait-style and the
	// verifier checked its no-failure contract instead of exploring
	// (see crashtest.Options.AssumeAnytime).
	WaitContract bool `json:"wait_contract,omitempty"`
	// Bound names the bound that truncated a Bounded search.
	Bound   string        `json:"bound,omitempty"`
	Elapsed time.Duration `json:"elapsed"`
	// Finding is the shrunk, replayable counterexample (nil unless
	// Verdict is Counterexample).
	Finding *crashtest.Finding `json:"finding,omitempty"`
}

func (o Options) withDefaults() Options {
	if o.MaxDepth == 0 {
		o.MaxDepth = 64
	}
	if o.MaxStates == 0 {
		o.MaxStates = 200_000
	}
	if o.ProgressEvery == 0 {
		o.ProgressEvery = 100
	}
	return o
}

// crashtestOptions projects the verifier's knobs onto the crashtest
// options used for case preparation and counterexample confirmation.
func (o Options) crashtestOptions() crashtest.Options {
	return crashtest.Options{
		Model:          o.Model,
		MaxStepsFactor: o.MaxStepsFactor,
		NoShrink:       o.NoShrink,
		ShrinkBudget:   o.ShrinkBudget,
		AssumeAnytime:  o.AssumeAnytime,
	}
}

// node is one frontier entry: a persistent state plus the injection
// path that reached it. The cold root has a nil state.
type node struct {
	state *emulator.PersistentState
	hash  emulator.StateHash
	path  []crashtest.PointSpec
	depth int
	// cumSteps/cumSaves are the run ordinals accumulated along the path
	// in a continuous replay: a child discovered at leg-local visit
	// (kind, step s, saves a) is reached by failing at absolute
	// occurrence cumSteps+s (step points) or cumSaves+a (save points).
	// Steps and SaveAttempts are cumulative across power failures, so
	// the absolute ordinals address exactly the intended points when the
	// whole path replays as one TraceSchedule.
	cumSteps int64
	cumSaves int64
}

// Run verifies one case. It returns a SkipError (via crashtest) for
// cases the verifier cannot judge — the same ineligibility rules as
// Hunt — and ctx.Err() on cancellation.
func Run(ctx context.Context, cs crashtest.Case, opts Options) (*Report, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if d, ok := ctx.Deadline(); ok && (opts.Deadline.IsZero() || d.Before(opts.Deadline)) {
		opts.Deadline = d
	}
	ctOpts := opts.crashtestOptions()
	b, err := crashtest.Prepare(cs, ctOpts)
	if err != nil {
		return nil, err
	}
	ncs := b.Case()

	baseCfg := emulator.Config{
		Model:        b.Model(),
		VMSize:       ncs.VMSize,
		Intermittent: true,
		EB:           b.EB(),
	}

	// Root baseline: the placement under its own physics, no injections.
	// Its step count sizes every later run's bound, and its class mirrors
	// Hunt's baseline gate.
	rootCfg := baseCfg
	rootCfg.Inputs = b.Inputs()
	rootRes, rootErr := emulator.Run(b.Module(), rootCfg)
	baseline := b.Classify(rootRes, rootErr, 0)
	exhaustionFinding := func(class crashtest.Class, detail string) *Report {
		return &Report{
			Verdict: Counterexample,
			States:  1,
			Elapsed: time.Since(start),
			Finding: &crashtest.Finding{
				Case:     ncs,
				Schedule: crashtest.ScheduleSpec{Exhaust: true},
				Class:    class,
				Detail:   detail,
				FoundBy:  "verify-root",
			},
		}
	}

	waitContract := crashtest.WaitOnly(b.Module()) && !opts.AssumeAnytime
	switch baseline.Class {
	case crashtest.ClassNone:
	case crashtest.ClassDivergence, crashtest.ClassPoisonRead:
		return exhaustionFinding(baseline.Class, baseline.Detail), nil
	default:
		if waitContract {
			return exhaustionFinding(baseline.Class, baseline.Detail), nil
		}
		return nil, &crashtest.SkipError{Reason: fmt.Sprintf(
			"baseline (exhaustion-only) run is %s: %s", baseline.Class, baseline.Detail)}
	}

	if waitContract {
		// Wait-style contract: the runtime sleeps at each checkpoint until
		// the capacitor is full and segments fit EB, so the hardware rules
		// out failures between checkpoints. There is nothing to explore —
		// the guarantee itself is the verification condition: the physics
		// run must complete correctly with zero power failures.
		if baseline.Res.PowerFailures > 0 {
			return exhaustionFinding(crashtest.ClassForwardProgress, fmt.Sprintf(
				"wait-style placement hit %d unplanned power failures (segments exceed EB)",
				baseline.Res.PowerFailures)), nil
		}
		return &Report{Verdict: Verified, States: 1, WaitContract: true, Elapsed: time.Since(start)}, nil
	}

	legSteps := ctOpts.MaxStepsFor(baseline.Res.Steps)
	root, err := emulator.InitialState(b.Module(), rootCfg)
	if err != nil {
		return nil, err
	}

	visited := map[emulator.StateHash]struct{}{root.Hash(): {}}
	frontier := []node{{state: nil, hash: root.Hash(), depth: 0}}
	var (
		edges, dedup int64
		explored     int
		maxDepth     int
		bound        string
	)

	report := func(depth int) {
		if opts.Progress != nil {
			opts.Progress(Progress{
				States:   len(visited),
				Explored: explored,
				Frontier: len(frontier),
				Edges:    edges,
				Dedup:    dedup,
				Depth:    depth,
			})
		}
	}

	for len(frontier) > 0 {
		// A mid-search deadline truncates to a Bounded verdict — the
		// explored portion is still a meaningful answer; only outright
		// cancellation aborts with an error.
		if err := ctx.Err(); err != nil {
			if errors.Is(err, context.Canceled) {
				return nil, err
			}
			bound = "deadline"
			break
		}
		if !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
			bound = "deadline"
			break
		}
		n := frontier[0]
		frontier = frontier[1:]
		if n.depth > maxDepth {
			maxDepth = n.depth
		}

		// One resumed run covers ALL outgoing edges of this node: the
		// persistent state only changes at NVM stores, counter bumps, and
		// checkpoint commits, so the run's injection points fall into
		// windows of equal state hash, and each distinct hash along the
		// run is one successor. The same run's final result classifies the
		// node itself: it is exactly "resume here and never inject again".
		var discovered []node
		prev := n.hash
		cfg := baseCfg
		cfg.MaxSteps = legSteps
		if n.state == nil {
			cfg.Inputs = b.Inputs()
		} else {
			cfg.Resume = n.state
		}
		cfg.Hook = func(v emulator.PointVisit, capture func() *emulator.PersistentState) {
			edges++
			if v.Hash == prev {
				// Same window: a failure here lands in the state the
				// previous point already led to.
				dedup++
				return
			}
			prev = v.Hash
			if _, ok := visited[v.Hash]; ok {
				dedup++
				return
			}
			if n.depth+1 > opts.MaxDepth {
				bound = "max-depth"
				return
			}
			if len(visited) >= opts.MaxStates {
				bound = "max-states"
				return
			}
			visited[v.Hash] = struct{}{}
			child := node{
				state:    capture(),
				hash:     v.Hash,
				path:     appendSpec(n, v),
				depth:    n.depth + 1,
				cumSteps: n.cumSteps + v.Step,
				cumSaves: n.cumSaves + v.Saves,
			}
			discovered = append(discovered, child)
		}
		res, runErr := emulator.Run(b.Module(), cfg)
		out := b.Classify(res, runErr, legSteps)
		explored++
		if out.Class != crashtest.ClassNone {
			// This reachable state misbehaves with no further injections:
			// the path that reached it is the counterexample. Replay it as
			// one continuous schedule through the standard confirm+shrink
			// pipeline; the continuous replay's class is authoritative
			// (watchdog state accumulates across legs there).
			confirmSteps := legSteps * int64(len(n.path)+1)
			f, err := b.ConfirmSpec("verify-exhaustive", n.path, confirmSteps, ctOpts)
			if err != nil {
				return nil, fmt.Errorf("verify: case %s: state at depth %d is %s but %w",
					ncs.Name, n.depth, out.Class, err)
			}
			report(n.depth)
			return &Report{
				Verdict:   Counterexample,
				States:    len(visited),
				Edges:     edges,
				DedupHits: dedup,
				MaxDepth:  maxDepth,
				Elapsed:   time.Since(start),
				Finding:   f,
			}, nil
		}
		frontier = append(frontier, discovered...)
		if explored%opts.ProgressEvery == 0 {
			report(n.depth)
		}
	}

	rep := &Report{
		Verdict:   Verified,
		States:    len(visited),
		Edges:     edges,
		DedupHits: dedup,
		MaxDepth:  maxDepth,
		Bound:     bound,
		Elapsed:   time.Since(start),
	}
	if bound != "" {
		rep.Verdict = Bounded
	}
	report(maxDepth)
	return rep, nil
}

// appendSpec extends the node's injection path with the absolute
// occurrence of the visited point (see node.cumSteps/cumSaves).
func appendSpec(n node, v emulator.PointVisit) []crashtest.PointSpec {
	abs := n.cumSaves + v.Saves
	if v.Kind == emulator.PointStep {
		abs = n.cumSteps + v.Step
	}
	path := make([]crashtest.PointSpec, 0, len(n.path)+1)
	path = append(path, n.path...)
	return append(path, crashtest.PointSpec{Kind: v.Kind.String(), N: abs})
}
