package verify

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"schematic/internal/crashtest"
)

// benchCase builds one bench-backed case, optionally sabotaged.
func benchCase(t *testing.T, name, technique string, sabotage int) crashtest.Case {
	t.Helper()
	cases, err := crashtest.BenchCases([]string{name}, []string{technique}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cs := cases[0]
	cs.Sabotage = sabotage
	return cs
}

// TestVerifiedCorrectPlacements: correct placements on the bounded
// subset exhaust their state space with no counterexample, and the
// same-hash windowing keeps the dedup rate far above the 50% bar.
func TestVerifiedCorrectPlacements(t *testing.T) {
	for _, tc := range []struct{ bench, tech string }{
		{"crc", "Ratchet"},
		{"crc", "Alfred"},
		{"randmath", "Ratchet"},
		{"randmath", "Alfred"},
		{"randmath", "Mementos"},
	} {
		t.Run(tc.bench+"/"+tc.tech, func(t *testing.T) {
			rep, err := Run(context.Background(), benchCase(t, tc.bench, tc.tech, 0), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Verdict != Verified {
				t.Fatalf("verdict = %s (bound %q, finding %+v), want %s",
					rep.Verdict, rep.Bound, rep.Finding, Verified)
			}
			if rep.WaitContract {
				t.Fatalf("anytime technique reported a wait contract")
			}
			if rep.States < 2 || rep.Edges == 0 || rep.MaxDepth == 0 {
				t.Fatalf("degenerate exploration: %+v", rep)
			}
			if rate := float64(rep.DedupHits) / float64(rep.Edges); rate <= 0.5 {
				t.Errorf("dedup rate %.2f (hits %d / edges %d), want > 0.5",
					rate, rep.DedupHits, rep.Edges)
			}
		})
	}
}

// TestCounterexampleReplaysDeterministically: a sabotaged placement must
// produce a counterexample whose shrunk trace survives the NDJSON
// round trip and replays — through the standard repro path — to the
// same class, twice.
func TestCounterexampleReplaysDeterministically(t *testing.T) {
	rep, err := Run(context.Background(), benchCase(t, "randmath", "Alfred", 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Counterexample || rep.Finding == nil {
		t.Fatalf("verdict = %s, finding = %+v; want a counterexample", rep.Verdict, rep.Finding)
	}
	f := *rep.Finding
	if f.Class == crashtest.ClassNone {
		t.Fatalf("finding has no class: %+v", f)
	}

	var buf bytes.Buffer
	if err := crashtest.WriteFindings(&buf, []crashtest.Finding{f}); err != nil {
		t.Fatal(err)
	}
	back, err := crashtest.ReadFindings(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("round trip returned %d findings", len(back))
	}
	for i := 0; i < 2; i++ {
		out, err := crashtest.Replay(back[0], crashtest.Options{})
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		if out.Class != f.Class {
			t.Fatalf("replay %d class = %s, want %s (%s)", i, out.Class, f.Class, out.Detail)
		}
	}
}

// TestAgreesWithHunt: on every case both can judge, exhaustive
// verification and sampling agree — both clean, both violated (same
// class need not match: the verifier may reach states sampling's
// schedule families never hit, but found/not-found must), or both
// skipped.
func TestAgreesWithHunt(t *testing.T) {
	huntOpts := crashtest.Options{ExhaustiveStepLimit: 400, SampledSteps: 10, SampledSaves: 3, RandomSchedules: 2}
	for _, tech := range []string{"Ratchet", "Alfred", "Mementos"} {
		for _, sab := range []int{0, 1} {
			t.Run(tech+"/sab"+string(rune('0'+sab)), func(t *testing.T) {
				cs := benchCase(t, "randmath", tech, sab)
				rep, verr := Run(context.Background(), cs, Options{})
				f, herr := crashtest.Hunt(context.Background(), cs, huntOpts)

				var vs, hs *crashtest.SkipError
				vSkip := errors.As(verr, &vs)
				hSkip := errors.As(herr, &hs)
				if vSkip != hSkip {
					t.Fatalf("skip disagreement: verify err=%v, hunt err=%v", verr, herr)
				}
				if vSkip {
					return
				}
				if verr != nil || herr != nil {
					t.Fatalf("verify err=%v, hunt err=%v", verr, herr)
				}
				vFound := rep.Verdict == Counterexample
				hFound := f != nil
				if vFound != hFound {
					t.Fatalf("disagreement: verify=%s, hunt finding=%+v", rep.Verdict, f)
				}
				if !vFound && rep.Verdict != Verified {
					t.Fatalf("clean case not verified: %+v", rep)
				}
			})
		}
	}
}

// TestWaitContract: wait-style placements are verified via their
// no-failure contract, not explored.
func TestWaitContract(t *testing.T) {
	rep, err := Run(context.Background(), benchCase(t, "randmath", "Schematic", 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Verified || !rep.WaitContract || rep.States != 1 {
		t.Fatalf("wait-style report: %+v", rep)
	}
}

// TestBounds: a tight state bound truncates to Bounded and names the
// bound; an already-expired deadline does the same without exploring.
func TestBounds(t *testing.T) {
	rep, err := Run(context.Background(), benchCase(t, "crc", "Ratchet", 0), Options{MaxStates: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Bounded || rep.Bound != "max-states" {
		t.Fatalf("report: %+v, want bounded by max-states", rep)
	}
	if rep.States > 8 {
		t.Fatalf("states %d exceeds MaxStates 8", rep.States)
	}

	rep, err = Run(context.Background(), benchCase(t, "crc", "Ratchet", 0),
		Options{Deadline: time.Now().Add(-time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Bounded || rep.Bound != "deadline" {
		t.Fatalf("report: %+v, want bounded by deadline", rep)
	}
}

// TestProgress: the progress callback fires with monotonic counters.
func TestProgress(t *testing.T) {
	var calls int
	var last Progress
	_, err := Run(context.Background(), benchCase(t, "randmath", "Ratchet", 0), Options{
		ProgressEvery: 10,
		Progress: func(p Progress) {
			calls++
			if p.States < last.States || p.Edges < last.Edges || p.Explored < last.Explored {
				t.Fatalf("progress went backwards: %+v after %+v", p, last)
			}
			last = p
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress never fired")
	}
	if last.States == 0 || last.Edges == 0 {
		t.Fatalf("final progress empty: %+v", last)
	}
}

// TestCancellation: outright cancellation aborts with the context error
// rather than a Bounded report.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	opts := Options{Progress: func(Progress) { cancel() }, ProgressEvery: 1}
	_, err := Run(ctx, benchCase(t, "crc", "Ratchet", 0), opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
