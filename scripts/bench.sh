#!/bin/sh
# bench.sh: run the full schemabench suite and write the canonical
# BENCH_010.json report at the repo root. Run on an otherwise idle
# machine; the grid numbers are wall-clock throughput.
#
#   make bench          -> this script
#   make bench-smoke    -> schemabench -smoke -check BENCH_010.json (CI gate)
set -e
cd "$(dirname "$0")/.."
go run ./cmd/schemabench -o BENCH_010.json
