#!/bin/sh
# harvest-smoke: harvested-energy environments end to end.
#
# Places crc with Ratchet (failure-tolerant anywhere, so harvested
# refusals are routine), runs it under a short-period solar profile
# whose nights outlast the capacitor — real refusal decisions land in
# the recorded NDJSON trace — then replays the trace and requires the
# replay to reproduce the recorded run exactly: same program output,
# same verdict, same energy ledger. Finally sweeps the quick benchmarks
# across three harvested environments against their continuous-power
# oracles with zero tolerated violations. Wired into `make ci`.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp" ./cmd/schematicc ./cmd/iemu ./cmd/crashhunt

"$tmp/schematicc" -technique ratchet -budget 3000 \
    -o "$tmp/crc.ir" internal/bench/programs/crc.mc 2>/dev/null

# Record. period=20000,day=0.3 gives 14000-cycle nights against a
# 3000 nJ capacitor (~7500 cycles of charge): failures are guaranteed.
"$tmp/iemu" -eb 3000 -power solar:period=20000,day=0.3,window=2000 \
    -record "$tmp/run.ndjson" "$tmp/crc.ir" \
    >"$tmp/rec.out" 2>"$tmp/rec.stats"
grep -q '"kind":"harvest-trace"' "$tmp/run.ndjson"
grep -q '"k":"fail"' "$tmp/run.ndjson"
grep -q '^verdict: *completed$' "$tmp/rec.stats"

# Replay must reproduce the run byte for byte: the program output and
# the full stats block (verdict, cycles, ledger, failure counts).
"$tmp/iemu" -eb 3000 -power "trace:$tmp/run.ndjson" "$tmp/crc.ir" \
    >"$tmp/rep.out" 2>"$tmp/rep.stats"
cmp -s "$tmp/rec.out" "$tmp/rep.out"
cmp -s "$tmp/rec.stats" "$tmp/rep.stats"

# Harvested sweep: quick benchmarks x every technique under three
# environments, classified against the continuous-power oracle.
"$tmp/crashhunt" -benches crc,randmath -power solar -power rf -power duty -timeout 60s

echo "harvest-smoke: ok"
