#!/bin/sh
# loadtest-smoke: the load generator against a real daemon process.
#
# Starts schematicd with a disk store, fires a closed-loop mixed
# workload (compile/emulate/validate/grid) through cmd/loadtest, and
# requires zero failed requests and a sane tail latency. The report's
# own gates (-max-errors, -max-p99) do the judging; this script just
# sanity-checks the JSON afterwards. Wired into `make ci`.
set -eu

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp" ./cmd/schematicd ./cmd/loadtest

"$tmp/schematicd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -q \
    -store "$tmp/store" 2>"$tmp/daemon.log" &
pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "loadtest-smoke: daemon never published its address" >&2
        cat "$tmp/daemon.log" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$tmp/addr")

# ~120 mixed requests over 8 workers; the p99 bound is generous — it
# exists to catch hangs, not to benchmark (schemabench does that).
"$tmp/loadtest" -addr "$addr" -n 120 -c 8 -seeds 3 \
    -max-errors 0 -max-p99 5000 -o "$tmp/report.json"

grep -q '"requests": 120' "$tmp/report.json"
grep -q '"errors": 0' "$tmp/report.json"
grep -q '"rejected": 0' "$tmp/report.json"
# The deterministic sequence repeats digests: the cache must have
# answered some requests, and the store must have been written through.
if grep -q '"cache_hit_rate": 0$' "$tmp/report.json"; then
    echo "loadtest-smoke: zero cache hits under a repeating workload" >&2
    cat "$tmp/report.json" >&2
    exit 1
fi
if grep -q '"store_puts_delta": 0,' "$tmp/report.json"; then
    echo "loadtest-smoke: store saw no write-through puts" >&2
    cat "$tmp/report.json" >&2
    exit 1
fi

kill -TERM "$pid"
if ! wait "$pid"; then
    echo "loadtest-smoke: daemon exited nonzero after SIGTERM" >&2
    cat "$tmp/daemon.log" >&2
    exit 1
fi
pid=""
grep -q 'drained, exiting' "$tmp/daemon.log"

echo "loadtest-smoke: ok"
