#!/bin/sh
# serve-smoke: end-to-end exercise of the schematicd daemon.
#
# Builds schematicd + schemactl, starts the daemon on an ephemeral port,
# round-trips a compile and an emulate through schemactl, proves the
# content-addressed cache dedups a repeat, scrapes /metrics, and checks
# the daemon drains cleanly on SIGTERM (exit 0). Wired into `make ci`.
set -eu

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp" ./cmd/schematicd ./cmd/schemactl

"$tmp/schematicd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -q 2>"$tmp/daemon.log" &
pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: daemon never published its address" >&2
        cat "$tmp/daemon.log" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$tmp/addr")

ctl() { "$tmp/schemactl" -addr "$addr" "$@"; }

ctl health | grep -q '"status":"ok"'

ctl compile -bench crc -tech schematic -tbpf 2000 -profile-runs 2 -o "$tmp/compile.json"
grep -q '"checkpoints"' "$tmp/compile.json"

ctl emulate -bench crc -tech schematic -tbpf 2000 -profile-runs 2 -o "$tmp/emulate.json"
grep -q '"verdict": "completed"' "$tmp/emulate.json"

# The identical request again: must be answered from the result cache.
ctl emulate -bench crc -tech schematic -tbpf 2000 -profile-runs 2 >/dev/null

ctl metrics >"$tmp/metrics.txt"
grep -q 'schematicd_requests_total{endpoint="compile",code="200"} 1' "$tmp/metrics.txt"
grep -q 'schematicd_requests_total{endpoint="emulate",code="200"} 2' "$tmp/metrics.txt"
grep -q 'schematicd_cache_hits_total 1' "$tmp/metrics.txt"
grep -q 'schematicd_cache_misses_total 2' "$tmp/metrics.txt"

kill -TERM "$pid"
if ! wait "$pid"; then
    echo "serve-smoke: daemon exited nonzero after SIGTERM" >&2
    cat "$tmp/daemon.log" >&2
    exit 1
fi
pid=""
grep -q 'drained, exiting' "$tmp/daemon.log"

echo "serve-smoke: ok"
