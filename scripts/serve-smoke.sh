#!/bin/sh
# serve-smoke: end-to-end exercise of the schematicd daemon.
#
# Builds schematicd + schemactl, starts the daemon on an ephemeral port,
# round-trips a compile and an emulate through schemactl, proves the
# content-addressed cache dedups a repeat, scrapes /metrics, exercises
# the live console (dashboard page, observed emulation, run registry,
# SSE stream followed to its terminal result), round-trips an exhaustive
# verification through POST /v1/verify (cached on resubmission), and
# checks the daemon drains cleanly on SIGTERM (exit 0). Wired into
# `make ci`.
set -eu

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp" ./cmd/schematicd ./cmd/schemactl

"$tmp/schematicd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -q 2>"$tmp/daemon.log" &
pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: daemon never published its address" >&2
        cat "$tmp/daemon.log" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$tmp/addr")

ctl() { "$tmp/schemactl" -addr "$addr" "$@"; }

ctl health | grep -q '"status":"ok"'

ctl compile -bench crc -tech schematic -tbpf 2000 -profile-runs 2 -o "$tmp/compile.json"
grep -q '"checkpoints"' "$tmp/compile.json"

ctl emulate -bench crc -tech schematic -tbpf 2000 -profile-runs 2 -o "$tmp/emulate.json"
grep -q '"verdict": "completed"' "$tmp/emulate.json"

# The identical request again: must be answered from the result cache.
ctl emulate -bench crc -tech schematic -tbpf 2000 -profile-runs 2 >/dev/null

ctl metrics >"$tmp/metrics.txt"
grep -q 'schematicd_requests_total{endpoint="compile",code="200"} 1' "$tmp/metrics.txt"
grep -q 'schematicd_requests_total{endpoint="emulate",code="200"} 2' "$tmp/metrics.txt"
grep -q 'schematicd_cache_hits_total 1' "$tmp/metrics.txt"
grep -q 'schematicd_cache_misses_total 2' "$tmp/metrics.txt"

# --- live console ---

# The embedded dashboard serves at /.
curl -fsS "http://$addr/" >"$tmp/dash.html"
grep -qi 'schematic' "$tmp/dash.html"

# An observed emulation lands in the run registry...
ctl emulate -bench crc -tech schematic -tbpf 2000 -profile-runs 2 -observe -o "$tmp/observe.json"
grep -q '"verdict": "completed"' "$tmp/observe.json"
digest=$(ctl runs | grep -o '"digest":"[0-9a-f]*"' | head -1 | cut -d'"' -f4)
if [ -z "$digest" ]; then
    echo "serve-smoke: observed run missing from /v1/runs" >&2
    exit 1
fi
ctl runs | grep -q "\"digest\":\"$digest\",\"name\":\"crc\""

# ...and its SSE stream replays to a terminal result record.
ctl tail "$digest" >"$tmp/events.ndjson"
[ "$(wc -l <"$tmp/events.ndjson")" -gt 1 ]
tail -1 "$tmp/events.ndjson" | grep -q '"k":"result"'

# The stream shows up in the metrics page, now histogram-shaped.
ctl metrics >"$tmp/metrics2.txt"
grep -q 'schematicd_requests_total{endpoint="events",code="200"} 1' "$tmp/metrics2.txt"
grep -q 'schematicd_request_duration_seconds_bucket{endpoint="events",le="+Inf"} 1' "$tmp/metrics2.txt"
grep -q 'schematicd_sse_subscribers 0' "$tmp/metrics2.txt"
# Two registered runs: the unobserved emulate and the observed one (the
# cache-served repeat never reaches the registry).
grep -q 'schematicd_runs_retained 2' "$tmp/metrics2.txt"

# --- exhaustive verification ---

# POST /v1/verify model-checks a placement to a verdict...
verify_req='{"bench":"randmath","options":{"technique":"ratchet"}}'
curl -fsS -D "$tmp/verify.hdr" -d "$verify_req" "http://$addr/v1/verify" >"$tmp/verify.json"
grep -q '"verdict":"verified"' "$tmp/verify.json"
grep -q '"ok":true' "$tmp/verify.json"

# ...and the identical request is answered from the result cache: same
# digest, byte-identical body, one more cache hit and no new miss.
curl -fsS -D "$tmp/verify2.hdr" -d "$verify_req" "http://$addr/v1/verify" >"$tmp/verify2.json"
cmp -s "$tmp/verify.json" "$tmp/verify2.json"
d1=$(grep -i '^x-schematic-digest:' "$tmp/verify.hdr" | tr -d '\r' | cut -d' ' -f2)
d2=$(grep -i '^x-schematic-digest:' "$tmp/verify2.hdr" | tr -d '\r' | cut -d' ' -f2)
[ -n "$d1" ] && [ "$d1" = "$d2" ]

ctl metrics >"$tmp/metrics3.txt"
grep -q 'schematicd_requests_total{endpoint="verify",code="200"} 2' "$tmp/metrics3.txt"
grep -q 'schematicd_cache_hits_total 2' "$tmp/metrics3.txt"
grep -q 'schematicd_cache_misses_total 4' "$tmp/metrics3.txt"
grep 'schematicd_verify_states_total' "$tmp/metrics3.txt" | grep -qv ' 0$'

kill -TERM "$pid"
if ! wait "$pid"; then
    echo "serve-smoke: daemon exited nonzero after SIGTERM" >&2
    cat "$tmp/daemon.log" >&2
    exit 1
fi
pid=""
grep -q 'drained, exiting' "$tmp/daemon.log"

echo "serve-smoke: ok"
