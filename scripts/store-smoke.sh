#!/bin/sh
# store-smoke: the disk store's restart-survival contract, end to end
# across real processes.
#
# Starts schematicd with -store, computes an emulate and a grid, and
# checks the results were written through to disk. Then SIGTERMs the
# daemon, starts a second one on the same -store directory, and replays
# the same requests: the grid must resolve every cell from the store
# (cells_computed 0) and the daemon must report the cross-process hits
# on /metrics without writing anything new. Wired into `make ci`.
set -eu

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp" ./cmd/schematicd ./cmd/schemactl

start_daemon() {
    "$tmp/schematicd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -q \
        -store "$tmp/store" 2>>"$tmp/daemon.log" &
    pid=$!
    i=0
    while [ ! -s "$tmp/addr" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "store-smoke: daemon never published its address" >&2
            cat "$tmp/daemon.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    addr=$(cat "$tmp/addr")
}

stop_daemon() {
    kill -TERM "$pid"
    if ! wait "$pid"; then
        echo "store-smoke: daemon exited nonzero after SIGTERM" >&2
        cat "$tmp/daemon.log" >&2
        exit 1
    fi
    pid=""
    rm -f "$tmp/addr"
}

ctl() { "$tmp/schemactl" -addr "$addr" "$@"; }

# --- first process: fill the store ---
start_daemon

ctl emulate -bench crc -tech schematic -tbpf 2000 -profile-runs 2 -o "$tmp/emulate1.json"
grep -q '"verdict": "completed"' "$tmp/emulate1.json"

ctl grid -benches crc -techniques schematic,ratchet -tbpfs 2000 -profile-runs 2 -o "$tmp/grid1.json"
# One cell overlaps the emulate above (cache), the other computes fresh.
grep -q '"cells_total": 2' "$tmp/grid1.json"
grep -q '"cells_computed": 1' "$tmp/grid1.json"
grep -q '"cells_from_cache": 1' "$tmp/grid1.json"
grep -q '"cell_errors": 0' "$tmp/grid1.json"

ctl metrics >"$tmp/metrics1.txt"
grep -q 'schematicd_store_puts_total 2' "$tmp/metrics1.txt"
grep -q 'schematicd_store_hits_total 0' "$tmp/metrics1.txt"
grep -q 'schematicd_grid_runs_total 1' "$tmp/metrics1.txt"

stop_daemon

# --- second process, same -store directory: recompute nothing ---
start_daemon

# The identical grid resolves every cell from disk.
ctl grid -benches crc -techniques schematic,ratchet -tbpfs 2000 -profile-runs 2 -o "$tmp/grid2.json"
grep -q '"cells_computed": 0' "$tmp/grid2.json"
grep -q '"cells_from_store": 2' "$tmp/grid2.json"
grep -q '"cell_errors": 0' "$tmp/grid2.json"

# The grid warmed the in-memory tier, so the emulate repeat is a cache
# hit — and byte-identical to what the first process computed.
ctl emulate -bench crc -tech schematic -tbpf 2000 -profile-runs 2 -o "$tmp/emulate2.json"
cmp -s "$tmp/emulate1.json" "$tmp/emulate2.json"

ctl metrics >"$tmp/metrics2.txt"
grep -q 'schematicd_store_hits_total 2' "$tmp/metrics2.txt"
grep -q 'schematicd_store_puts_total 0' "$tmp/metrics2.txt"
grep -q 'schematicd_store_corrupt_total 0' "$tmp/metrics2.txt"
grep -q 'schematicd_grid_cells_total{source="store"} 2' "$tmp/metrics2.txt"

stop_daemon
grep -q 'drained, exiting' "$tmp/daemon.log"

echo "store-smoke: ok"
