#!/bin/sh
# verify-smoke: exhaustive crash-verification gate.
#
# Model-checks the small benchmarks (crc, randmath) under a rollback and
# a checkpoint technique — every reachable persistent state, every
# power-failure injection point — and requires a clean Verified verdict.
# Then deletes a checkpoint from a known-good placement and requires the
# checker to find a shrunk counterexample (exit 1) whose NDJSON repro
# replays deterministically. Wired into `make ci`.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/crashhunt" ./cmd/crashhunt

# Correct placements must verify exhaustively: full state counts, no
# bound hit, no counterexample.
"$tmp/crashhunt" -exhaustive -benches crc,randmath -techs Ratchet,Alfred -timeout 60s

# A sabotaged placement must yield a counterexample (exit 1, not an
# infrastructure error) with a serialized repro...
status=0
"$tmp/crashhunt" -exhaustive -benches randmath -techs Alfred -sabotage 1 \
    -o "$tmp/findings.ndjson" -timeout 60s || status=$?
if [ "$status" -ne 1 ]; then
    echo "verify-smoke: sabotaged placement: want exit 1, got $status" >&2
    exit 1
fi
[ -s "$tmp/findings.ndjson" ]

# ...that replays to the recorded violation class.
"$tmp/crashhunt" -replay "$tmp/findings.ndjson"

echo "verify-smoke: ok"
